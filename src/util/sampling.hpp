/**
 * @file
 * Strided row sampling shared by the statistical detection paths
 * (SimilarityDetector::detectSampled, DetectionFrontend).
 *
 * The naive stride `n / samples` truncates: the tail rows beyond
 * `samples * (n / samples)` are never visited and the mix rescaling
 * then extrapolates the head over the whole population. The helpers
 * here use round-to-nearest strided indices instead, which cover the
 * full [0, n) range with evenly spaced picks and degrade to the exact
 * old indices whenever `samples` divides `n`.
 */

#ifndef MERCURY_UTIL_SAMPLING_HPP
#define MERCURY_UTIL_SAMPLING_HPP

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/logging.hpp"

namespace mercury {

/**
 * Index of the i-th of `samples` evenly spaced picks over [0, n):
 * round(i * n / samples). Requires 0 < samples <= n and 0 <= i <
 * samples; the result is strictly increasing in i and always < n.
 */
inline int64_t
stridedSampleIndex(int64_t i, int64_t n, int64_t samples)
{
    if (samples <= 0 || samples > n)
        panic("stridedSampleIndex needs 0 < samples <= n, got ", samples,
              " of ", n);
    if (i < 0 || i >= samples)
        panic("sample index ", i, " outside 0..", samples - 1);
    return (i * n + samples / 2) / samples;
}

/**
 * Evenly strided (samples, d) sub-matrix of a (n, d) row matrix,
 * keeping stream order (similarity decays with distance in real
 * activation streams, so the sample must preserve ordering).
 */
inline Tensor
stridedSampleRows(const Tensor &rows, int64_t samples)
{
    if (rows.rank() != 2)
        panic("stridedSampleRows expects a (n, d) matrix, got ",
              rows.shapeStr());
    const int64_t n = rows.dim(0);
    const int64_t d = rows.dim(1);
    Tensor sample({samples, d});
    for (int64_t i = 0; i < samples; ++i) {
        const int64_t src = stridedSampleIndex(i, n, samples);
        for (int64_t j = 0; j < d; ++j)
            sample.at2(i, j) = rows.at2(src, j);
    }
    return sample;
}

/**
 * The shared sampled-detection policy (SimilarityDetector and
 * DetectionFrontend): run the full pass when the population fits the
 * bound, otherwise detect over the strided sample and rescale the mix
 * to the full population. `detect_mix` maps a row matrix to its mix.
 */
template <typename DetectMixFn>
auto
sampledDetection(const Tensor &rows, int64_t max_sample,
                 DetectMixFn &&detect_mix)
{
    if (max_sample <= 0)
        panic("detectSampled needs a positive sample bound");
    const int64_t n = rows.dim(0);
    if (n <= max_sample)
        return detect_mix(rows);
    return detect_mix(stridedSampleRows(rows, max_sample)).scaledTo(n);
}

} // namespace mercury

#endif // MERCURY_UTIL_SAMPLING_HPP
