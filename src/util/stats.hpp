/**
 * @file
 * Lightweight statistics package for simulator components.
 *
 * Components register named scalar counters in a StatGroup; benches
 * and tests read them back by name. Also hosts small numeric helpers
 * (geometric mean, mean, ratio formatting) used by the experiment
 * harnesses.
 */

#ifndef MERCURY_UTIL_STATS_HPP
#define MERCURY_UTIL_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mercury {

/** A single named scalar statistic (counter or gauge). */
class Stat
{
  public:
    Stat() : value_(0.0) {}

    void operator+=(double d) { value_ += d; }
    void operator++() { value_ += 1.0; }
    void operator++(int) { value_ += 1.0; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_;
};

/** A named collection of statistics with hierarchical dotted names. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "");

    /** Get-or-create a counter with the given name. */
    Stat &stat(const std::string &name);

    /** Look up a counter; panics if absent. */
    const Stat &get(const std::string &name) const;

    /** True if the named counter exists. */
    bool has(const std::string &name) const;

    /** Reset every counter in the group to zero. */
    void resetAll();

    /** Names in insertion-independent (sorted) order. */
    std::vector<std::string> names() const;

    /** Render "name value" lines, one per stat. */
    std::string dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Stat> stats_;
};

/** Geometric mean of strictly positive values; panics on empty input. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; panics on empty input. */
double mean(const std::vector<double> &values);

/** Population standard deviation. */
double stddev(const std::vector<double> &values);

} // namespace mercury

#endif // MERCURY_UTIL_STATS_HPP
