#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.hpp"

namespace mercury {

ThreadPool::ThreadPool(int workers)
{
    if (workers < 0)
        panic("ThreadPool worker count must be non-negative, got ",
              workers);
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (threads_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        // Every worker is awake: each is either running a task (and
        // will re-check the queue under the mutex before sleeping) or
        // between the idle decrement and its own queue check — either
        // way the new task is seen without a wakeup. Skipping the
        // notify elides a futex syscall per submit on the streaming
        // hot path, where submits vastly outnumber sleeps.
        if (idleWorkers_ == 0)
            return;
    }
    ready_.notify_one();
}

void
ThreadPool::submitBatch(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (threads_.empty()) {
        for (auto &task : tasks)
            task();
        return;
    }
    bool wake;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &task : tasks)
            queue_.push_back(std::move(task));
        // Same elision as submit(): with every worker awake the batch
        // is seen without a wakeup.
        wake = idleWorkers_ > 0;
    }
    if (wake)
        ready_.notify_all();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            while (!stopping_ && queue_.empty()) {
                ++idleWorkers_;
                ready_.wait(lock);
                --idleWorkers_;
            }
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace {

/** Shared state of one parallelFor call. */
struct ForJob
{
    std::atomic<int64_t> next{0};
    int64_t items = 0;
    const std::function<void(int64_t)> *fn = nullptr;
    std::atomic<int> pendingDrivers{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;

    void drive()
    {
        int64_t i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) < items)
            (*fn)(i);
    }
};

} // namespace

void
ThreadPool::parallelFor(int64_t items,
                        const std::function<void(int64_t)> &fn)
{
    if (items <= 0)
        return;
    if (threads_.empty() || items == 1) {
        for (int64_t i = 0; i < items; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<ForJob>();
    job->items = items;
    job->fn = &fn;
    const int drivers = static_cast<int>(std::min<int64_t>(
        static_cast<int64_t>(threads_.size()), items));
    job->pendingDrivers.store(drivers);
    for (int k = 0; k < drivers; ++k) {
        submit([job] {
            job->drive();
            if (job->pendingDrivers.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(job->doneMutex);
                job->doneCv.notify_all();
            }
        });
    }

    // The caller is an executor too: no thread idles during a loop.
    job->drive();

    std::unique_lock<std::mutex> lock(job->doneMutex);
    job->doneCv.wait(lock,
                     [&job] { return job->pendingDrivers.load() == 0; });
}

int
ThreadPool::resolveThreads(int requested)
{
    if (requested < 0)
        panic("thread count must be >= 0 (0 = auto), got ", requested);
    if (requested >= 1)
        return std::min(requested, 256);
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp<int>(static_cast<int>(hw), 1, 16);
}

ThreadPool *
ThreadPool::forKnob(int requested, std::unique_ptr<ThreadPool> &slot)
{
    const int threads = resolveThreads(requested);
    if (threads <= 1)
        return nullptr;
    if (!slot)
        slot = std::make_unique<ThreadPool>(threads - 1);
    return slot.get();
}

} // namespace mercury
