#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/logging.hpp"

namespace mercury {

namespace {

/**
 * Worker identity of the current thread: the pool it belongs to and
 * its index there ({nullptr, -1} on non-worker threads). Lets
 * submit() route to the caller's own deque without a lookup.
 */
struct WorkerTls
{
    ThreadPool *pool = nullptr;
    int index = -1;
};

thread_local WorkerTls t_worker;

/** Nested inline-execution frames of the current thread. */
thread_local int t_inlineDepth = 0;

/** xorshift64* — only steal-victim randomization rides on this. */
uint64_t
nextRand(uint64_t &state)
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
}

} // namespace

// ---------------------------------------------------------------------------
// Chase-Lev deque
// ---------------------------------------------------------------------------

bool
ThreadPool::Deque::push(Task *t)
{
    const int64_t b = bottom.load(std::memory_order_relaxed);
    const int64_t tp = top.load(std::memory_order_seq_cst);
    if (b - tp >= kCapacity)
        return false; // full — caller overflows to the injection queue
    ring[b & kMask].store(t, std::memory_order_relaxed);
    // seq_cst publish pairs with the seq_cst loads in steal() and in
    // the Dekker rescan of hasQueuedWork().
    bottom.store(b + 1, std::memory_order_seq_cst);
    return true;
}

ThreadPool::Task *
ThreadPool::Deque::pop()
{
    const int64_t b = bottom.load(std::memory_order_relaxed) - 1;
    bottom.store(b, std::memory_order_seq_cst);
    int64_t tp = top.load(std::memory_order_seq_cst);
    if (tp > b) {
        bottom.store(b + 1, std::memory_order_seq_cst);
        return nullptr; // empty
    }
    Task *t = ring[b & kMask].load(std::memory_order_relaxed);
    if (tp == b) {
        // Last element: race the thieves for it.
        if (!top.compare_exchange_strong(tp, tp + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst))
            t = nullptr; // a thief won
        bottom.store(b + 1, std::memory_order_seq_cst);
    }
    return t;
}

ThreadPool::Task *
ThreadPool::Deque::steal()
{
    int64_t tp = top.load(std::memory_order_seq_cst);
    const int64_t b = bottom.load(std::memory_order_seq_cst);
    if (tp >= b)
        return nullptr;
    Task *t = ring[tp & kMask].load(std::memory_order_relaxed);
    if (!top.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_seq_cst))
        return nullptr; // lost to the owner or another thief
    return t;
}

bool
ThreadPool::Deque::looksNonEmpty() const
{
    return bottom.load(std::memory_order_seq_cst) >
           top.load(std::memory_order_seq_cst);
}

// ---------------------------------------------------------------------------
// Pool lifecycle
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int workers)
{
    if (workers < 0)
        panic("ThreadPool worker count must be non-negative, got ",
              workers);
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        workers_.push_back(std::make_unique<Worker>());
        workers_.back()->rngState =
            0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(i + 1) + 1;
    }
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
        stopping_.store(true, std::memory_order_seq_cst);
    }
    ready_.notify_all();
    for (auto &t : threads_)
        t.join();
    // Workers drain every queue before exiting; anything left here
    // would mean the exit condition is broken.
    if (globalSize_.load(std::memory_order_relaxed) != 0)
        panic("ThreadPool destroyed with an undrained injection queue");
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

void
ThreadPool::runInline(Task &&task)
{
    inlineRuns_.fetch_add(1, std::memory_order_relaxed);
    ++t_inlineDepth;
    task();
    --t_inlineDepth;
}

void
ThreadPool::enqueue(Task *t)
{
    const WorkerTls &w = t_worker;
    if (w.pool == this && workers_[static_cast<size_t>(w.index)]
                              ->deque.push(t)) {
        // Landed in the caller's own deque lock-free. Dekker: the
        // push above is seq_cst; a worker parking concurrently either
        // sees it in its final rescan, or incremented idleWorkers_
        // first and is seen here.
        if (idleWorkers_.load(std::memory_order_seq_cst) > 0)
            wake(false);
        return;
    }
    // Non-worker thread, or the owner deque is full: inject.
    {
        std::lock_guard<std::mutex> lock(globalMutex_);
        global_.push_back(t);
    }
    globalSize_.fetch_add(1, std::memory_order_seq_cst);
    if (idleWorkers_.load(std::memory_order_seq_cst) > 0)
        wake(false);
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (threads_.empty()) {
        // Degenerate pool: everything inline, unbounded (nothing
        // self-replenishes on a poolless path).
        task();
        return;
    }
    // Worker submitting while every peer is busy, with inline budget
    // left: run on this thread instead of queueing behind a context
    // switch. Only workers may inline — for outside threads submit()
    // is contractually asynchronous (SessionHandle::submit's bounded
    // queue and SerialExecutor::run both rely on returning before the
    // task runs).
    if (t_worker.pool == this &&
        idleWorkers_.load(std::memory_order_seq_cst) == 0 &&
        t_inlineDepth < kMaxInlineDepth) {
        runInline(std::move(task));
        return;
    }
    enqueue(new Task(std::move(task)));
}

void
ThreadPool::submitBatch(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (threads_.empty()) {
        for (auto &task : tasks)
            task(); // in order, matching repeated submit()
        return;
    }
    if (t_worker.pool == this) {
        // Worker: the batch lands in the caller's own deque lock-free
        // (enqueue spills task-by-task if it fills).
        for (auto &task : tasks)
            enqueue(new Task(std::move(task)));
        return;
    }
    const int64_t count = static_cast<int64_t>(tasks.size());
    {
        std::lock_guard<std::mutex> lock(globalMutex_);
        for (auto &task : tasks)
            global_.push_back(new Task(std::move(task)));
    }
    globalSize_.fetch_add(count, std::memory_order_seq_cst);
    if (idleWorkers_.load(std::memory_order_seq_cst) > 0)
        wake(count > 1);
}

// ---------------------------------------------------------------------------
// Work discovery
// ---------------------------------------------------------------------------

ThreadPool::Task *
ThreadPool::popGlobal()
{
    if (globalSize_.load(std::memory_order_seq_cst) <= 0)
        return nullptr;
    std::lock_guard<std::mutex> lock(globalMutex_);
    if (global_.empty())
        return nullptr;
    Task *t = global_.front();
    global_.pop_front();
    globalSize_.fetch_sub(1, std::memory_order_seq_cst);
    return t;
}

ThreadPool::Task *
ThreadPool::findWork(int self)
{
    if (self >= 0) {
        if (Task *t = workers_[static_cast<size_t>(self)]->deque.pop())
            return t;
    }
    if (Task *t = popGlobal())
        return t;
    // Randomized steal sweep over the other deques.
    const int n = static_cast<int>(workers_.size());
    if (n <= (self >= 0 ? 1 : 0))
        return nullptr;
    uint64_t transientState =
        0x853C49E6748FEA9BULL + static_cast<uint64_t>(self + 7);
    uint64_t &state = self >= 0
                          ? workers_[static_cast<size_t>(self)]->rngState
                          : transientState;
    const int start = static_cast<int>(nextRand(state) % n);
    for (int k = 0; k < n; ++k) {
        int victim = start + k;
        if (victim >= n)
            victim -= n;
        if (victim == self)
            continue;
        if (Task *t = workers_[static_cast<size_t>(victim)]->deque.steal()) {
            steals_.fetch_add(1, std::memory_order_relaxed);
            return t;
        }
    }
    return nullptr;
}

bool
ThreadPool::hasQueuedWork() const
{
    if (globalSize_.load(std::memory_order_seq_cst) > 0)
        return true;
    for (const auto &w : workers_)
        if (w->deque.looksNonEmpty())
            return true;
    return false;
}

void
ThreadPool::wake(bool all)
{
    // Empty critical section: a worker between its idle increment and
    // its wait() holds parkMutex_, so acquiring it here means the
    // worker is either pre-recheck (and will see the work) or already
    // waiting (and will get the notify).
    { std::lock_guard<std::mutex> lock(parkMutex_); }
    if (all)
        ready_.notify_all();
    else
        ready_.notify_one();
}

void
ThreadPool::workerLoop(int index)
{
    t_worker.pool = this;
    t_worker.index = index;
    for (;;) {
        Task *t = findWork(index);
        // Spin briefly before parking: a yield beats a futex wait
        // when the producer is one context switch away.
        for (int spin = 0; spin < 2 && t == nullptr; ++spin) {
            std::this_thread::yield();
            t = findWork(index);
        }
        if (t == nullptr) {
            if (stopping_.load(std::memory_order_seq_cst)) {
                // Stopping and a full sweep came up dry. Tasks still
                // running on other workers only push to their own
                // deques, which those workers drain before exiting —
                // nothing can land here anymore.
                return;
            }
            std::unique_lock<std::mutex> lock(parkMutex_);
            idleWorkers_.fetch_add(1, std::memory_order_seq_cst);
            // Dekker recheck: a submitter that missed our idle
            // increment published its push before this rescan.
            if (!stopping_.load(std::memory_order_seq_cst) &&
                !hasQueuedWork())
                ready_.wait(lock);
            idleWorkers_.fetch_sub(1, std::memory_order_seq_cst);
            continue;
        }
        (*t)();
        delete t;
    }
}

// ---------------------------------------------------------------------------
// parallelFor
// ---------------------------------------------------------------------------

namespace {

/** Shared state of one parallelFor call. */
struct ForJob
{
    std::atomic<int64_t> next{0};
    int64_t items = 0;
    const std::function<void(int64_t)> *fn = nullptr;
    std::atomic<int> pendingDrivers{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;

    void drive()
    {
        int64_t i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) < items)
            (*fn)(i);
    }
};

} // namespace

void
ThreadPool::parallelFor(int64_t items,
                        const std::function<void(int64_t)> &fn)
{
    if (items <= 0)
        return;
    if (threads_.empty() || items == 1) {
        for (int64_t i = 0; i < items; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<ForJob>();
    job->items = items;
    job->fn = &fn;
    const int drivers = static_cast<int>(std::min<int64_t>(
        static_cast<int64_t>(threads_.size()), items));
    job->pendingDrivers.store(drivers);
    // Helper drivers are queued, never run inline: the caller drives
    // the loop itself below, so inlining one here would serialize it.
    for (int k = 0; k < drivers; ++k) {
        enqueue(new Task([job] {
            job->drive();
            if (job->pendingDrivers.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(job->doneMutex);
                job->doneCv.notify_all();
            }
        }));
    }

    // The caller is an executor too: no thread idles during a loop.
    job->drive();

    std::unique_lock<std::mutex> lock(job->doneMutex);
    job->doneCv.wait(lock,
                     [&job] { return job->pendingDrivers.load() == 0; });
}

// ---------------------------------------------------------------------------
// Knob resolution
// ---------------------------------------------------------------------------

int
ThreadPool::resolveThreads(int requested)
{
    if (requested < 0)
        panic("thread count must be >= 0 (0 = auto), got ", requested);
    if (requested >= 1)
        return std::min(requested, 256);
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp<int>(static_cast<int>(hw), 1, 16);
}

ThreadPool *
ThreadPool::forKnob(int requested, std::unique_ptr<ThreadPool> &slot)
{
    const int threads = resolveThreads(requested);
    if (threads <= 1)
        return nullptr;
    if (!slot)
        slot = std::make_unique<ThreadPool>(threads - 1);
    return slot.get();
}

} // namespace mercury
