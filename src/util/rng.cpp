#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace mercury {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
Rng::splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    uint64_t sm = seed_value;
    for (auto &s : state_)
        s = splitMix64(sm);
    cachedNormal_ = 0.0;
    hasCachedNormal_ = false;
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt called with n == 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return v % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

void
Rng::fillNormal(std::vector<float> &out)
{
    for (auto &v : out)
        v = static_cast<float>(normal());
}

Rng
Rng::fork()
{
    return Rng(next64());
}

} // namespace mercury
