/**
 * @file
 * ASCII table / CSV emitter used by the bench harnesses to print the
 * rows and series that the paper's tables and figures report.
 */

#ifndef MERCURY_UTIL_TABLE_HPP
#define MERCURY_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace mercury {

/** A simple column-aligned text table. */
class Table
{
  public:
    /** Construct with a title (printed above the table). */
    explicit Table(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a row of pre-formatted cells. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands grouping. */
    static std::string count(uint64_t v);

    /** Render as an aligned ASCII table. */
    std::string str() const;

    /** Render as CSV (header + rows). */
    std::string csv() const;

    /** Print the ASCII rendering to stdout. */
    void print() const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mercury

#endif // MERCURY_UTIL_TABLE_HPP
