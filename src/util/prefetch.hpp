/**
 * @file
 * Software-prefetch hint, compiled out on toolchains without
 * __builtin_prefetch. Purely a host-side latency hint: nothing in the
 * timing model or the bit-identity contract observes it. The fused
 * detection-block path (pipeline/detection_pipeline.cpp) and the
 * filter-segment walk (core/conv_reuse_engine.cpp) use it to pull the
 * *next* MCACHE set / PassDataPlane slot into cache while the current
 * row is being probed.
 */

#ifndef MERCURY_UTIL_PREFETCH_HPP
#define MERCURY_UTIL_PREFETCH_HPP

namespace mercury {

/** Hint a read of `p` into a low cache level (best effort, may no-op). */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0 /* read */, 1 /* low temporal locality */);
#else
    (void)p;
#endif
}

} // namespace mercury

#endif // MERCURY_UTIL_PREFETCH_HPP
