/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * fatal() is for user errors (bad configuration); panic() is for
 * internal invariant violations. Both terminate. inform()/warn() are
 * purely informational and never stop the simulation.
 */

#ifndef MERCURY_UTIL_LOGGING_HPP
#define MERCURY_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mercury {

namespace detail {

inline void
appendParts(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendParts(std::ostringstream &os, const T &part, const Rest &...rest)
{
    os << part;
    appendParts(os, rest...);
}

/** Join a parameter pack into one message string. */
template <typename... Parts>
std::string
joinParts(const Parts &...parts)
{
    std::ostringstream os;
    appendParts(os, parts...);
    return os.str();
}

} // namespace detail

/** Print an informational message to stderr. */
template <typename... Parts>
void
inform(const Parts &...parts)
{
    std::fprintf(stderr, "info: %s\n", detail::joinParts(parts...).c_str());
}

/** Print a warning message to stderr. */
template <typename... Parts>
void
warn(const Parts &...parts)
{
    std::fprintf(stderr, "warn: %s\n", detail::joinParts(parts...).c_str());
}

/**
 * Terminate because of a user-level error (invalid configuration or
 * arguments). Exits with status 1.
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts &...parts)
{
    std::fprintf(stderr, "fatal: %s\n", detail::joinParts(parts...).c_str());
    std::exit(1);
}

/**
 * Terminate because of an internal invariant violation (a simulator
 * bug). Aborts so a core dump / debugger can inspect the state.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts &...parts)
{
    std::fprintf(stderr, "panic: %s\n", detail::joinParts(parts...).c_str());
    std::abort();
}

} // namespace mercury

#endif // MERCURY_UTIL_LOGGING_HPP
