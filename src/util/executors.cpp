#include "util/executors.hpp"

namespace mercury {

void
TaskGroup::run(std::function<void()> task)
{
    if (!pool_ || pool_->workers() == 0) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_->submit([this, task = std::move(task)] {
        task();
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0)
            done_.notify_all();
    });
}

void
TaskGroup::runBatch(int64_t count, const std::function<void()> &task)
{
    if (count <= 0)
        return;
    if (!pool_ || pool_->workers() == 0) {
        for (int64_t i = 0; i < count; ++i)
            task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_ += count;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
        tasks.push_back([this, task] {
            task();
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_all();
        });
    }
    pool_->submitBatch(std::move(tasks));
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
}

void
SerialExecutor::run(std::function<void()> task)
{
    if (!pool_ || pool_->workers() == 0) {
        task();
        return;
    }
    bool start = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        if (!active_) {
            active_ = true;
            start = true;
        }
    }
    // At most one pump per executor is in flight, so the chain runs
    // strictly in submission order.
    if (start)
        pool_->submit([this] { pump(); });
}

void
SerialExecutor::pump()
{
    for (;;) {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty()) {
                active_ = false;
                idle_.notify_all();
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
SerialExecutor::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return !active_ && queue_.empty(); });
}

} // namespace mercury
