/**
 * @file
 * Small closable FIFO hand-off queue, used by the detection pipeline
 * to stream completed signature/hit blocks to a consumer while later
 * blocks are still hashing (the Fig. 8 overlap, in software).
 *
 * Concurrency contract: one consumer thread calls pop()/tryPop().
 * Any number of producers may call push()/close() — pushes are
 * serialized by the internal mutex, so "SPSC" here describes the
 * intended hand-off shape (the pipeline's sequencer guarantees pushes
 * arrive in block order), not a lock-free restriction. pop() blocks
 * until an item or close() arrives; after close() drains, pop()
 * returns false forever.
 */

#ifndef MERCURY_UTIL_SPSC_QUEUE_HPP
#define MERCURY_UTIL_SPSC_QUEUE_HPP

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.hpp"

namespace mercury {

/** Closable blocking FIFO queue for pipeline block hand-off. */
template <typename T> class SpscQueue
{
  public:
    /**
     * Enqueue one item and wake the consumer. Pushing into a closed
     * queue is a bug (the item could only be dropped silently) and
     * panics.
     */
    void push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                panic("push into a closed SpscQueue");
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
    }

    /**
     * Dequeue into `out`, blocking until an item is available. Returns
     * false once the queue is closed and drained.
     */
    bool pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Non-blocking pop; false when nothing is queued right now. */
    bool tryPop(T &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** End the stream: pop() returns false once the backlog drains. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace mercury

#endif // MERCURY_UTIL_SPSC_QUEUE_HPP
