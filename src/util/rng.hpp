/**
 * @file
 * Deterministic random number generation for the whole simulator.
 *
 * Every stochastic component (random projection matrices, synthetic
 * workloads, weight initialization) draws from an explicitly seeded
 * Rng so that runs are bit-reproducible across platforms. The core is
 * xoshiro256**, seeded via SplitMix64.
 */

#ifndef MERCURY_UTIL_RNG_HPP
#define MERCURY_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace mercury {

/** Deterministic, seedable pseudo random number generator. */
class Rng
{
  public:
    /** Construct with the given seed (any value, including 0). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Re-seed the generator, resetting all cached state. */
    void seed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal sample (Box-Muller, cached pair). */
    double normal();

    /** Normal sample with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Fill a vector with standard normal samples. */
    void fillNormal(std::vector<float> &out);

    /** Derive an independent child generator (for per-layer streams). */
    Rng fork();

  private:
    uint64_t state_[4];
    double cachedNormal_;
    bool hasCachedNormal_;

    static uint64_t splitMix64(uint64_t &x);
};

} // namespace mercury

#endif // MERCURY_UTIL_RNG_HPP
