/**
 * @file
 * Small fixed-size worker pool with a shared work queue, used by the
 * detection pipeline (src/pipeline) to run row blocks and MCACHE
 * shards concurrently. The composition helpers built on it (TaskGroup
 * and SerialExecutor) live in util/executors.hpp.
 *
 * The pool is deliberately minimal: submit closures, or run an
 * index-space loop with parallelFor(). The calling thread
 * participates in parallelFor(), so a pool of W workers executes
 * loops with W + 1 concurrent executors.
 *
 * Deadlock rule: pool tasks must never block on other pool tasks
 * (TaskGroup::wait, SerialExecutor::wait, and parallelFor are for
 * non-worker threads). All submitted closures must be no-throw — a
 * failed invariant panics/aborts, it does not unwind.
 */

#ifndef MERCURY_UTIL_THREAD_POOL_HPP
#define MERCURY_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mercury {

/** Fixed-size worker pool over a mutex-protected work queue. */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (0 is allowed: everything runs inline). */
    explicit ThreadPool(int workers);

    /** Drains the queue and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Enqueue one task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Enqueue a dependent group of tasks under one queue lock. A
     * caller that knows its next wave of work up front (the planned
     * execution path; DetectionHashJob's seed tasks) hands it over in
     * one push instead of paying a lock/notify round-trip per task —
     * and, unlike draining the queue between waves, the batch lands
     * while earlier tasks may still be running. With no workers the
     * tasks run inline, in order, exactly like repeated submit().
     */
    void submitBatch(std::vector<std::function<void()>> tasks);

    /**
     * Run fn(0) .. fn(items - 1) across the pool and the calling
     * thread, returning when every item completed. Indices are
     * dynamically scheduled; fn must not assume any ordering. Safe to
     * call with an empty pool (runs inline).
     */
    void parallelFor(int64_t items, const std::function<void(int64_t)> &fn);

    /**
     * Resolve a thread-count knob: explicit values >= 1 pass through
     * capped at 256 (a typo'd knob must not exhaust OS threads),
     * 0 (auto) becomes the hardware concurrency clamped to [1, 16].
     */
    static int resolveThreads(int requested);

    /**
     * Lazily materialize a pool for a thread knob into `slot` and
     * return it, or nullptr when the resolved count is <= 1 (run
     * inline). The pool gets `threads - 1` workers because callers
     * participate in every parallelFor.
     */
    static ThreadPool *forKnob(int requested,
                               std::unique_ptr<ThreadPool> &slot);

  private:
    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable ready_;
    int idleWorkers_ = 0; ///< workers asleep in ready_.wait
    bool stopping_ = false;

    void workerLoop();
};

} // namespace mercury

#endif // MERCURY_UTIL_THREAD_POOL_HPP
