/**
 * @file
 * Small fixed-size worker pool with a shared work queue, used by the
 * detection pipeline (src/pipeline) to run row blocks and MCACHE
 * shards concurrently, plus two composition helpers the overlapped
 * reuse engines build on: TaskGroup (submit-many, join-once) and
 * SerialExecutor (a FIFO task chain — at most one task of the chain
 * runs at a time, in submission order).
 *
 * The pool is deliberately minimal: submit closures, or run an
 * index-space loop with parallelFor(). The calling thread
 * participates in parallelFor(), so a pool of W workers executes
 * loops with W + 1 concurrent executors.
 *
 * Deadlock rule: pool tasks must never block on other pool tasks
 * (TaskGroup::wait, SerialExecutor::wait, and parallelFor are for
 * non-worker threads). All submitted closures must be no-throw — a
 * failed invariant panics/aborts, it does not unwind.
 */

#ifndef MERCURY_UTIL_THREAD_POOL_HPP
#define MERCURY_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mercury {

/** Fixed-size worker pool over a mutex-protected work queue. */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (0 is allowed: everything runs inline). */
    explicit ThreadPool(int workers);

    /** Drains the queue and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Enqueue one task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Run fn(0) .. fn(items - 1) across the pool and the calling
     * thread, returning when every item completed. Indices are
     * dynamically scheduled; fn must not assume any ordering. Safe to
     * call with an empty pool (runs inline).
     */
    void parallelFor(int64_t items, const std::function<void(int64_t)> &fn);

    /**
     * Resolve a thread-count knob: explicit values >= 1 pass through
     * capped at 256 (a typo'd knob must not exhaust OS threads),
     * 0 (auto) becomes the hardware concurrency clamped to [1, 16].
     */
    static int resolveThreads(int requested);

    /**
     * Lazily materialize a pool for a thread knob into `slot` and
     * return it, or nullptr when the resolved count is <= 1 (run
     * inline). The pool gets `threads - 1` workers because callers
     * participate in every parallelFor.
     */
    static ThreadPool *forKnob(int requested,
                               std::unique_ptr<ThreadPool> &slot);

  private:
    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable ready_;
    bool stopping_ = false;

    void workerLoop();
};

/**
 * Join handle over a set of independently submitted tasks: run() any
 * number of closures, wait() once for all of them. The overlapped FC
 * and attention engines use one group per forward pass to join the
 * per-block compute tasks they spawned while detection was still
 * streaming.
 *
 * Concurrency contract: run() may be called from any thread,
 * including from inside a task of this very group (the streaming
 * pipeline's self-replenishing hash chain does exactly that); the
 * bookkeeping is mutex-protected. wait() is called by one owner
 * thread (the engine's caller) and must not be called from inside a
 * pool task. With a null pool every run() executes inline and wait()
 * is a no-op.
 */
class TaskGroup
{
  public:
    /** @param pool worker pool, or nullptr to run everything inline */
    explicit TaskGroup(ThreadPool *pool)
        : pool_(pool)
    {
    }

    /** Destructor joins: outstanding tasks finish before teardown. */
    ~TaskGroup() { wait(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task (inline when the pool is null). */
    void run(std::function<void()> task);

    /** Block until every task submitted so far has completed. */
    void wait();

  private:
    ThreadPool *pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    int64_t pending_ = 0;
};

/**
 * FIFO task chain over a ThreadPool: tasks submitted to one executor
 * run in submission order and never concurrently with each other
 * (tasks of *different* executors do run concurrently). This is the
 * ordering primitive behind the overlapped conv engine: one executor
 * per in-flight filter keeps that filter's row blocks in stream
 * order — preserving the MCACHE owner-writes-before-hit-reads
 * discipline — while distinct filters proceed in parallel.
 *
 * Concurrency contract: run() and wait() are called by one owner
 * thread; the chain itself executes on pool workers (inline with a
 * null pool). wait() must not be called from inside a pool task.
 */
class SerialExecutor
{
  public:
    /** @param pool worker pool, or nullptr to run everything inline */
    explicit SerialExecutor(ThreadPool *pool)
        : pool_(pool)
    {
    }

    /** Destructor drains the chain. */
    ~SerialExecutor() { wait(); }

    SerialExecutor(const SerialExecutor &) = delete;
    SerialExecutor &operator=(const SerialExecutor &) = delete;

    /** Append one task to the chain (inline when the pool is null). */
    void run(std::function<void()> task);

    /** Block until the chain is drained (queue empty, nothing running). */
    void wait();

  private:
    ThreadPool *pool_;
    std::mutex mutex_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    bool active_ = false; ///< a pump task is scheduled or running

    void pump();
};

} // namespace mercury

#endif // MERCURY_UTIL_THREAD_POOL_HPP
