/**
 * @file
 * Work-stealing worker pool used by the detection pipeline
 * (src/pipeline) and every overlapped reuse pass. The composition
 * helpers built on it (TaskGroup and SerialExecutor) live in
 * util/executors.hpp.
 *
 * Execution substrate (see docs/ARCHITECTURE.md, "Execution
 * substrate"):
 *
 *  - Each worker owns a fixed-capacity Chase-Lev deque: the owner
 *    pushes and pops at the bottom (LIFO — the freshest task is the
 *    cache-hottest), thieves CAS the top (FIFO — the oldest task is
 *    the coldest and the best candidate to migrate). A worker that
 *    submits from inside a task therefore keeps its continuation
 *    local instead of bouncing it through a shared queue.
 *  - Non-worker threads submit into a mutex-protected injection
 *    queue, which also absorbs deque overflow. Workers scan: own
 *    deque, then injection queue, then a randomized steal sweep of
 *    the other deques.
 *  - A WORKER that submits while every peer is busy (none idle) may
 *    run the task inline, bounded at kMaxInlineDepth nested inline
 *    frames (self-replenishing task chains would otherwise recurse
 *    without bound). Inline execution is work-conserving: on an
 *    oversubscribed host the submitting worker does the work instead
 *    of queueing behind a context switch. Non-worker threads never
 *    inline (except on a 0-worker pool): for them submit() is
 *    contractually asynchronous — bounded job queues (serve
 *    backpressure) and SerialExecutor::run rely on it returning
 *    before the task executes.
 *  - Idle workers spin briefly (rescanning all sources), then park on
 *    a condition variable. Submitters elide the wakeup syscall when
 *    no worker is parked; the park/submit race is closed with a
 *    store-load (Dekker) pattern on seq_cst atomics — either the
 *    submitter observes the parked count, or the parking worker's
 *    final rescan observes the pushed work.
 *
 * The pool is deliberately minimal: submit closures, or run an
 * index-space loop with parallelFor(). The calling thread
 * participates in parallelFor(), so a pool of W workers executes
 * loops with W + 1 concurrent executors.
 *
 * Ordering: tasks of one pool run in no particular order (stealing
 * and inline execution both reorder); anything order-dependent rides
 * a SerialExecutor, whose chain contract is preserved unchanged (one
 * pump in flight per chain, tasks in submission order).
 *
 * Deadlock rule: pool tasks must never block on other pool tasks
 * (TaskGroup::wait, SerialExecutor::wait, and parallelFor are for
 * non-worker threads). All submitted closures must be no-throw — a
 * failed invariant panics/aborts, it does not unwind.
 */

#ifndef MERCURY_UTIL_THREAD_POOL_HPP
#define MERCURY_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mercury {

/** Fixed-size pool of work-stealing workers. */
class ThreadPool
{
  public:
    /**
     * Nested inline-execution frames submit() allows per thread
     * before falling back to queueing (bounds the stack depth of
     * self-replenishing task chains that resubmit from inside their
     * own inline run).
     */
    static constexpr int kMaxInlineDepth = 4;

    /** Spawn `workers` threads (0 is allowed: everything runs inline). */
    explicit ThreadPool(int workers);

    /** Drains all queues and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Enqueue one task for asynchronous execution. Worker threads
     * push to their own deque (no lock) — or, when no peer is idle,
     * run the task inline (depth-bounded, see kMaxInlineDepth).
     * Other threads always inject: for them submit() returns before
     * the task executes (unless the pool has zero workers).
     */
    void submit(std::function<void()> task);

    /**
     * Enqueue an independent group of tasks in one operation. A
     * caller that knows its next wave of work up front (the planned
     * execution path; DetectionHashJob's seed tasks) hands it over in
     * one push — from a worker the whole batch lands in its own deque
     * lock-free; from outside, one injection-queue lock covers the
     * batch. Tasks of a batch may run in any order (stealing
     * redistributes them). With no workers the tasks run inline, in
     * order, exactly like repeated submit().
     */
    void submitBatch(std::vector<std::function<void()>> tasks);

    /**
     * Run fn(0) .. fn(items - 1) across the pool and the calling
     * thread, returning when every item completed. Indices are
     * dynamically scheduled; fn must not assume any ordering. Safe to
     * call with an empty pool (runs inline).
     */
    void parallelFor(int64_t items, const std::function<void(int64_t)> &fn);

    /**
     * Resolve a thread-count knob: explicit values >= 1 pass through
     * capped at 256 (a typo'd knob must not exhaust OS threads),
     * 0 (auto) becomes the hardware concurrency clamped to [1, 16].
     */
    static int resolveThreads(int requested);

    /**
     * Lazily materialize a pool for a thread knob into `slot` and
     * return it, or nullptr when the resolved count is <= 1 (run
     * inline). The pool gets `threads - 1` workers because callers
     * participate in every parallelFor.
     */
    static ThreadPool *forKnob(int requested,
                               std::unique_ptr<ThreadPool> &slot);

    /** Successful steals so far (telemetry; tests assert > 0). */
    int64_t stealCount() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Tasks run inline on submitting threads (telemetry). */
    int64_t inlineRuns() const
    {
        return inlineRuns_.load(std::memory_order_relaxed);
    }

  private:
    using Task = std::function<void()>;

    /**
     * Chase-Lev work-stealing deque over a fixed ring of atomic task
     * pointers. Owner-only push()/pop() at the bottom; any thread may
     * steal() at the top. Fixed capacity: a full deque rejects the
     * push and the pool overflows into the injection queue, which
     * sidesteps the growth/retirement machinery of the unbounded
     * variant. seq_cst atomics throughout — the fence-based formula
     * tion is invisible to TSan, and these operations are nowhere
     * near the pool's hot-path cost.
     */
    struct Deque
    {
        static constexpr int64_t kCapacity = 4096; // power of two
        static constexpr int64_t kMask = kCapacity - 1;

        std::atomic<int64_t> top{0};
        std::atomic<int64_t> bottom{0};
        std::unique_ptr<std::atomic<Task *>[]> ring{
            new std::atomic<Task *>[kCapacity]};

        /** Owner push; false when full (caller overflows elsewhere). */
        bool push(Task *t);
        /** Owner pop, LIFO end; null when empty. */
        Task *pop();
        /** Thief pop, FIFO end; null when empty or lost the race. */
        Task *steal();
        /** Approximate occupancy (park/wake rescans). */
        bool looksNonEmpty() const;
    };

    struct Worker
    {
        Deque deque;
        uint64_t rngState = 0; ///< steal-victim randomization
    };

    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<Worker>> workers_;

    // Injection queue: non-worker submits and deque overflow.
    std::deque<Task *> global_;
    std::mutex globalMutex_;
    std::atomic<int64_t> globalSize_{0};

    // Park/wake.
    std::mutex parkMutex_;
    std::condition_variable ready_;
    std::atomic<int> idleWorkers_{0};
    std::atomic<bool> stopping_{false};

    std::atomic<int64_t> steals_{0};
    std::atomic<int64_t> inlineRuns_{0};

    void workerLoop(int index);
    /** Own deque -> injection queue -> randomized steal sweep. */
    Task *findWork(int self);
    Task *popGlobal();
    /** Queue one task (no inline): own deque or injection queue. */
    void enqueue(Task *t);
    /** Dekker rescan: any visible queued work? (seq_cst loads) */
    bool hasQueuedWork() const;
    void wake(bool all);
    /** Run a task inline, tracking the per-thread inline depth. */
    void runInline(Task &&task);
};

} // namespace mercury

#endif // MERCURY_UTIL_THREAD_POOL_HPP
