/**
 * @file
 * Composition helpers over ThreadPool: TaskGroup (submit-many,
 * join-once) and SerialExecutor (a FIFO task chain — at most one task
 * of the chain runs at a time, in submission order).
 *
 * These started life inside the reuse-engine translation units; they
 * are shared scheduling infrastructure now — the streaming detection
 * pipeline joins its hash tasks through a TaskGroup, and ReuseRuntime
 * builds every ordered stream consumer on SerialExecutor chains — so
 * they live here, with their own unit tests (tests/test_util.cpp).
 *
 * Deadlock rule (inherited from ThreadPool): pool tasks must never
 * block on other pool tasks — TaskGroup::wait and
 * SerialExecutor::wait are for non-worker threads only. All submitted
 * closures must be no-throw.
 */

#ifndef MERCURY_UTIL_EXECUTORS_HPP
#define MERCURY_UTIL_EXECUTORS_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "util/thread_pool.hpp"

namespace mercury {

/**
 * Join handle over a set of independently submitted tasks: run() any
 * number of closures, wait() once for all of them. The row-forwarding
 * reuse passes use one group per pass to join the per-block compute
 * tasks they spawned while detection was still streaming.
 *
 * Concurrency contract: run() may be called from any thread,
 * including from inside a task of this very group (the streaming
 * pipeline's self-replenishing hash chain does exactly that); the
 * bookkeeping is mutex-protected. wait() is called by one owner
 * thread (the engine's caller) and must not be called from inside a
 * pool task. With a null pool every run() executes inline and wait()
 * is a no-op.
 */
class TaskGroup
{
  public:
    /** @param pool worker pool, or nullptr to run everything inline */
    explicit TaskGroup(ThreadPool *pool)
        : pool_(pool)
    {
    }

    /** Destructor joins: outstanding tasks finish before teardown. */
    ~TaskGroup() { wait(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task (inline when the pool is null). */
    void run(std::function<void()> task);

    /**
     * Submit `count` copies of one task as a single batch
     * (ThreadPool::submitBatch): one lock round-trip and one wakeup
     * for the whole dependent group. The streaming pipeline seeds its
     * self-replenishing hash chains this way.
     */
    void runBatch(int64_t count, const std::function<void()> &task);

    /** Block until every task submitted so far has completed. */
    void wait();

  private:
    ThreadPool *pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    int64_t pending_ = 0;
};

/**
 * FIFO task chain over a ThreadPool: tasks submitted to one executor
 * run in submission order and never concurrently with each other
 * (tasks of *different* executors do run concurrently). This is the
 * ordering primitive behind the chained reuse passes: one executor
 * per in-flight filter keeps that filter's row blocks in stream
 * order — preserving the MCACHE owner-writes-before-hit-reads
 * discipline — while distinct filters proceed in parallel.
 *
 * Concurrency contract: run() and wait() are called by one owner
 * thread; the chain itself executes on pool workers (inline with a
 * null pool). wait() must not be called from inside a pool task.
 */
class SerialExecutor
{
  public:
    /** @param pool worker pool, or nullptr to run everything inline */
    explicit SerialExecutor(ThreadPool *pool)
        : pool_(pool)
    {
    }

    /** Destructor drains the chain. */
    ~SerialExecutor() { wait(); }

    SerialExecutor(const SerialExecutor &) = delete;
    SerialExecutor &operator=(const SerialExecutor &) = delete;

    /** Append one task to the chain (inline when the pool is null). */
    void run(std::function<void()> task);

    /** Block until the chain is drained (queue empty, nothing running). */
    void wait();

  private:
    ThreadPool *pool_;
    std::mutex mutex_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    bool active_ = false; ///< a pump task is scheduled or running

    void pump();
};

} // namespace mercury

#endif // MERCURY_UTIL_EXECUTORS_HPP
