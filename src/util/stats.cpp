#include "util/stats.hpp"

#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace mercury {

StatGroup::StatGroup(std::string name)
    : name_(std::move(name))
{
}

Stat &
StatGroup::stat(const std::string &name)
{
    return stats_[name];
}

const Stat &
StatGroup::get(const std::string &name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        panic("StatGroup '", name_, "': unknown stat '", name, "'");
    return it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

void
StatGroup::resetAll()
{
    for (auto &kv : stats_)
        kv.second.reset();
}

std::vector<std::string>
StatGroup::names() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &kv : stats_)
        out.push_back(kv.first);
    return out;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : stats_)
        os << kv.first << " " << kv.second.value() << "\n";
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        panic("geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean requires strictly positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        panic("mean of empty vector");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.empty())
        panic("stddev of empty vector");
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

} // namespace mercury
