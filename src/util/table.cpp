#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace mercury {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::count(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int pos = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it, ++pos) {
        if (pos > 0 && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::str() const
{
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << cell;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace mercury
