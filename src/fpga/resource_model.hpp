/**
 * @file
 * Analytical Virtex-7 resource and power model for MERCURY
 * (paper §VII-F, Tables I-IV).
 *
 * The paper reports synthesized numbers for a grid of MCACHE
 * organizations. This model reproduces them with an additive
 * decomposition anchored at the published data points:
 *
 *   est(sets, ways) = T2(sets) + T3(ways) - anchor(64, 16)
 *
 * where T2 piecewise-linearly interpolates the sets sweep (Table II,
 * 16 ways) and T3 the ways sweep (Table III, 64 sets). On the
 * published grid the model is exact; off the grid it extrapolates
 * linearly with the nearest segment's slope. DSP usage is constant
 * (MERCURY reuses the baseline's multipliers — signature generation
 * runs on the same PEs).
 */

#ifndef MERCURY_FPGA_RESOURCE_MODEL_HPP
#define MERCURY_FPGA_RESOURCE_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mercury {

/** One resource row (Virtex-7 primitives). */
struct FpgaResources
{
    double sliceLuts = 0;
    double sliceRegisters = 0;
    double blockRam = 0;
    double dsp48 = 0;
};

/** On-chip power decomposition in watts. */
struct FpgaPower
{
    double clocks = 0;
    double logic = 0;
    double signals = 0;
    double bram = 0;
    double dsps = 0;
    double staticPower = 0;
    /**
     * Residual dynamic power (I/O and other primitives): the paper's
     * per-column breakdown sums to ~0.107 W less than its reported
     * totals, so the unlisted remainder is modeled explicitly.
     */
    double other = 0;

    double total() const
    {
        return clocks + logic + signals + bram + dsps + staticPower +
               other;
    }
};

/** Memory primitive a component maps to (paper Table I). */
struct MemoryTypeRow
{
    std::string memoryType;
    std::string components;
};

/** The Table I mapping. */
std::vector<MemoryTypeRow> memoryTypeTable();

/** Piecewise-linear curve through anchor points. */
class AnchoredCurve
{
  public:
    AnchoredCurve(std::vector<double> xs, std::vector<double> ys);

    /** Interpolate (exact at anchors) or extrapolate linearly. */
    double eval(double x) const;

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

/** The anchored MERCURY resource/power model. */
class FpgaModel
{
  public:
    FpgaModel();

    /** MERCURY resources for an MCACHE organization. */
    FpgaResources resources(int sets, int ways) const;

    /** MERCURY power for an MCACHE organization. */
    FpgaPower power(int sets, int ways) const;

    /** Baseline accelerator (no MERCURY structures), Table IV. */
    FpgaResources baselineResources() const;
    FpgaPower baselinePower() const;

    /** Total-power ratio MERCURY/baseline at the default config. */
    double overheadRatio() const;
};

} // namespace mercury

#endif // MERCURY_FPGA_RESOURCE_MODEL_HPP
