#include "fpga/resource_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mercury {

std::vector<MemoryTypeRow>
memoryTypeTable()
{
    return {
        {"Block Memory",
         "Global Buffer, Input Buffer, Signature Table"},
        {"Slice Register",
         "MCACHE, Filters, Hitmap, Input/Weight registers, "
         "InUse/FlUse flags, ORg"},
    };
}

AnchoredCurve::AnchoredCurve(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    if (xs_.size() != ys_.size() || xs_.size() < 2)
        panic("AnchoredCurve needs >= 2 matching anchors");
    for (size_t i = 1; i < xs_.size(); ++i)
        if (xs_[i] <= xs_[i - 1])
            panic("AnchoredCurve anchors must be increasing");
}

double
AnchoredCurve::eval(double x) const
{
    size_t hi = 1;
    while (hi + 1 < xs_.size() && x > xs_[hi])
        ++hi;
    const size_t lo = hi - 1;
    const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
    return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

namespace {

// Anchor grids from the paper. Table II: 16 ways, sets sweep.
const std::vector<double> kSets = {16, 32, 48, 64};
// Table III: 64 sets, ways sweep.
const std::vector<double> kWays = {2, 4, 8, 16};

struct AnchoredPair
{
    AnchoredCurve bySets;
    AnchoredCurve byWays;
    double anchor; ///< value at (64 sets, 16 ways)

    double
    eval(int sets, int ways) const
    {
        return bySets.eval(sets) + byWays.eval(ways) - anchor;
    }
};

AnchoredPair
pairOf(std::vector<double> sets_vals, std::vector<double> ways_vals)
{
    const double anchor = sets_vals.back();
    return {AnchoredCurve(kSets, std::move(sets_vals)),
            AnchoredCurve(kWays, std::move(ways_vals)), anchor};
}

// Resources (Tables II-a / III-a).
const AnchoredPair kLuts =
    pairOf({140597, 211437, 216544, 216918},
           {216777, 216618, 216758, 216918});
const AnchoredPair kRegs =
    pairOf({62620, 69536, 74925, 81332},
           {65727, 67897, 71999, 81332});
const AnchoredPair kBram =
    pairOf({1177.5, 1193.5, 1209.5, 1225.5},
           {1225.5, 1225.5, 1225.5, 1225.5});

// Power (Tables II-b / III-b), per component.
const AnchoredPair kClocks = pairOf({0.138, 0.154, 0.155, 0.166},
                                    {0.146, 0.151, 0.157, 0.166});
const AnchoredPair kLogic = pairOf({0.102, 0.104, 0.103, 0.105},
                                   {0.100, 0.104, 0.101, 0.105});
const AnchoredPair kSignals = pairOf({0.180, 0.175, 0.201, 0.216},
                                     {0.176, 0.197, 0.180, 0.216});
const AnchoredPair kBramPower = pairOf({0.516, 0.524, 0.548, 0.561},
                                       {0.555, 0.543, 0.559, 0.561});
const AnchoredPair kStatic = pairOf({0.681, 0.683, 0.685, 0.687},
                                    {0.686, 0.686, 0.686, 0.687});
// Residual (I/O etc.): reported totals minus the listed columns.
const AnchoredPair kOther = pairOf({0.107, 0.106, 0.105, 0.107},
                                   {0.105, 0.106, 0.106, 0.107});

constexpr double kDspCount = 198;  // constant across organizations
constexpr double kDspPower = 0.087;

} // namespace

FpgaModel::FpgaModel() = default;

FpgaResources
FpgaModel::resources(int sets, int ways) const
{
    if (sets <= 0 || ways <= 0)
        panic("resources need positive sets/ways");
    FpgaResources r;
    r.sliceLuts = kLuts.eval(sets, ways);
    r.sliceRegisters = kRegs.eval(sets, ways);
    r.blockRam = kBram.eval(sets, ways);
    r.dsp48 = kDspCount;
    return r;
}

FpgaPower
FpgaModel::power(int sets, int ways) const
{
    if (sets <= 0 || ways <= 0)
        panic("power needs positive sets/ways");
    FpgaPower p;
    p.clocks = kClocks.eval(sets, ways);
    p.logic = kLogic.eval(sets, ways);
    p.signals = kSignals.eval(sets, ways);
    p.bram = kBramPower.eval(sets, ways);
    p.dsps = kDspPower;
    p.staticPower = kStatic.eval(sets, ways);
    p.other = kOther.eval(sets, ways);
    return p;
}

FpgaResources
FpgaModel::baselineResources() const
{
    // Paper Table IV-a.
    FpgaResources r;
    r.sliceLuts = 56910;
    r.sliceRegisters = 48735;
    r.blockRam = 1161.5;
    r.dsp48 = kDspCount;
    return r;
}

FpgaPower
FpgaModel::baselinePower() const
{
    // Paper Table IV-b.
    FpgaPower p;
    p.clocks = 0.112;
    p.logic = 0.070;
    p.signals = 0.138;
    p.bram = 0.511;
    p.dsps = kDspPower;
    p.staticPower = 0.678;
    p.other = 0.107;
    return p;
}

double
FpgaModel::overheadRatio() const
{
    return power(64, 16).total() / baselinePower().total();
}

} // namespace mercury
