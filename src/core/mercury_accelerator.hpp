/**
 * @file
 * Top-level MERCURY training simulator.
 *
 * Given a model (a sequence of LayerShapes), a dataflow, and a
 * similarity source (which measures HIT/MAU/MNU mixes by running the
 * real RPQ + MCACHE machinery over representative vectors), the
 * accelerator simulates whole training batches:
 *
 *  - forward propagation per layer, with signature generation;
 *  - backward propagation with two computations per layer (Eq. 1 and
 *    Eq. 2): the weight-gradient pass hashes gradient vectors anew —
 *    or, with weightGradReuse, replays the forward record by
 *    sum-then-multiply — while the input-gradient pass reuses the
 *    signatures saved during the forward pass of the consumer layer
 *    when the filter dimensions match (§III-C2);
 *  - record spill accounting: with a replay knob on, each layer's
 *    SignatureRecord occupies the global buffer between its forward
 *    and backward passes; the part past capacity spills to memory
 *    (TrainingReport::recordPeakBytes / recordSpillBytes);
 *  - adaptation: signature growth on loss plateaus and per-layer
 *    stoppage when detection costs more than it saves (§III-D).
 */

#ifndef MERCURY_CORE_MERCURY_ACCELERATOR_HPP
#define MERCURY_CORE_MERCURY_ACCELERATOR_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "sim/config.hpp"
#include "sim/cost_model.hpp"
#include "sim/dataflow.hpp"
#include "sim/layer_shape.hpp"

namespace mercury {

/** Which training computation a similarity query is for. */
enum class Phase
{
    Forward,        ///< inputs x weights
    BackwardWeight, ///< output gradients x saved inputs (Eq. 1)
    BackwardInput,  ///< output gradients x weights (Eq. 2)
};

/**
 * Provider of channel-pass HIT/MAU/MNU mixes. Implementations run
 * the real similarity detector over representative vector
 * populations (see workloads/), or return fixed mixes in tests.
 */
class SimilaritySource
{
  public:
    virtual ~SimilaritySource() = default;

    /** Mix of one channel pass of `shape` at `sig_bits` in `phase`. */
    virtual HitMix channelMix(const LayerShape &shape, int sig_bits,
                              Phase phase) = 0;
};

/** Per-layer outcome of a training simulation. */
struct LayerReport
{
    std::string name;
    LayerType type = LayerType::Conv;
    LayerCycles cycles;       ///< accumulated over all batches
    bool detectionOn = true;  ///< adaptive state at the end
    HitMix lastForwardMix;    ///< mix of the final forward pass
};

/** Whole-model outcome of a training simulation. */
struct TrainingReport
{
    std::vector<LayerReport> layers;
    LayerCycles totals;
    int finalSignatureBits = 0;
    int layersOn = 0;
    int layersOff = 0;

    /**
     * SignatureRecord spill accounting (§III-C2): when a replay knob
     * (backwardReuse / weightGradReuse) holds records between forward
     * and backward, the peak record working set of one batch, and the
     * traffic of the part that spilled past the global buffer (write
     * out + read back) accumulated over all accounted batches —
     * divide by the batch count for a per-batch bandwidth figure.
     * Zero when nothing replays.
     */
    uint64_t recordPeakBytes = 0;
    uint64_t recordSpillBytes = 0;

    double speedup() const { return totals.speedup(); }

    /** Fraction of MERCURY cycles spent generating signatures. */
    double signatureFraction() const;
};

/** The MERCURY accelerator simulation driver. */
class MercuryAccelerator
{
  public:
    /**
     * @param cfg   hardware configuration (dataflow, MCACHE, ...)
     * @param model layer descriptors, first to last
     */
    MercuryAccelerator(const AcceleratorConfig &cfg,
                       std::vector<LayerShape> model);

    const std::vector<LayerShape> &model() const { return model_; }

    /** Active timing backend (sim::CostModel::create selection). */
    const sim::CostModel &costModel() const { return *cost_; }

    /**
     * Simulate training.
     *
     * @param source   similarity mixes measured per layer/phase
     * @param batches  number of minibatches to simulate
     * @param batch    minibatch size
     * @param loss_fn  training-loss trace driving the adaptive
     *                 signature growth; defaults to a smooth decaying
     *                 curve that plateaus (so adaptation engages)
     * @param warmup_batches batches run before cycle accounting
     *                 starts: adaptation (per-layer stoppage,
     *                 signature growth) evolves but neither baseline
     *                 nor MERCURY cycles accumulate. Real training
     *                 runs for thousands of batches, so the
     *                 adaptation transient is negligible; warmup
     *                 models that steady state in a short simulation.
     */
    TrainingReport train(SimilaritySource &source, int batches,
                         int64_t batch,
                         std::function<double(int)> loss_fn = {},
                         int warmup_batches = 0);

    /**
     * Baseline cycles for one full training batch (forward plus both
     * backward computations for every layer).
     */
    uint64_t baselineBatchCycles(int64_t batch) const;

  private:
    AcceleratorConfig config_;
    std::vector<LayerShape> model_;
    std::unique_ptr<sim::CostModel> cost_; ///< backend by name

    /** True when layer l+1 lets layer l reuse forward signatures. */
    bool backwardReusesSignatures(size_t l) const;
};

} // namespace mercury

#endif // MERCURY_CORE_MERCURY_ACCELERATOR_HPP
