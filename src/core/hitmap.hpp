/**
 * @file
 * Hitmap: the per-input-vector HIT / MAU / MNU map that keeps the
 * dataflow regular while computations are skipped (§III-B3).
 *
 * Each entry also records the MCACHE entry id the vector resolved to
 * (for HIT and MAU), so PE sets can fetch or deposit results by id
 * without another tag comparison (§V).
 */

#ifndef MERCURY_CORE_HITMAP_HPP
#define MERCURY_CORE_HITMAP_HPP

#include <cstdint>
#include <vector>

#include "core/mcache.hpp"
#include "sim/dataflow.hpp"

namespace mercury {

/** The hitmap over one population of input vectors. */
class Hitmap
{
  public:
    /** Empty hitmap for `vectors` entries (all MNU until recorded). */
    explicit Hitmap(int64_t vectors = 0);

    int64_t size() const { return static_cast<int64_t>(entries_.size()); }

    /** Record the MCACHE outcome for vector i. */
    void record(int64_t i, const McacheResult &result);

    /** Outcome of vector i. */
    McacheOutcome outcome(int64_t i) const;

    /** MCACHE entry id of vector i (-1 when MNU). */
    int64_t entryId(int64_t i) const;

    bool isHit(int64_t i) const
    {
        return outcome(i) == McacheOutcome::Hit;
    }

    /** Aggregate counts in the timing model's HitMix form. */
    HitMix mix() const;

    /** Reset to a new population size. */
    void reset(int64_t vectors);

  private:
    struct Entry
    {
        McacheOutcome outcome = McacheOutcome::Mnu;
        int64_t entryId = -1;
        bool recorded = false;
    };

    std::vector<Entry> entries_;

    const Entry &at(int64_t i) const;
};

} // namespace mercury

#endif // MERCURY_CORE_HITMAP_HPP
