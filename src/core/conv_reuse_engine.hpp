/**
 * @file
 * Functional convolution with MERCURY reuse (§III-C1).
 *
 * For every (image, channel) the engine extracts the input vectors,
 * runs the similarity detector, then performs the channel's filter
 * passes: HIT vectors take their dot product from MCACHE (the value
 * the matching MAU vector computed), MAU vectors compute and deposit
 * their result, MNU vectors compute without caching. Results
 * accumulate over channels exactly like the baseline convolution, so
 * the output differs from the exact convolution only by the
 * reuse-induced approximation — which is what the accuracy
 * experiments measure.
 *
 * Overlap (§III-B, Fig. 8): when the frontend's PipelineConfig has
 * `overlap` set and a worker pool is available, the engine consumes
 * the pipeline's streaming block hand-off — the first `versions`
 * filter passes run as per-filter SerialExecutor chains that start on
 * each block as it is delivered, while later blocks are still
 * hashing, and the remaining filter groups run `versions` filters in
 * parallel on the pool. Each filter processes its rows in stream
 * order (the MCACHE owner-writes-before-hit-reads discipline), so
 * outputs, hit/skip decisions, and statistics are bit-identical to
 * the serial run-then-filter path.
 *
 * Thread-safety: forward() is driven by one thread; the filter tasks
 * it spawns touch the MCACHE data plane concurrently, which the
 * ShardedMCache serializes per shard. Two threads must not call
 * forward() on one engine (or on two engines sharing a frontend)
 * concurrently.
 *
 * The engine also reports the measured HIT/MAU/MNU mix and the MACs
 * skipped, which feed the timing model.
 */

#ifndef MERCURY_CORE_CONV_REUSE_ENGINE_HPP
#define MERCURY_CORE_CONV_REUSE_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mcache.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/detection_frontend.hpp"
#include "sim/dataflow.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Aggregated statistics of one reuse-enabled convolution. */
struct ReuseStats
{
    HitMix mix;                ///< summed over all (image, channel) passes
    uint64_t macsTotal = 0;    ///< baseline MAC count
    uint64_t macsSkipped = 0;  ///< MACs avoided through reuse
    int64_t channelPasses = 0; ///< number of detection passes run

    double skipFraction() const
    {
        return macsTotal
                   ? static_cast<double>(macsSkipped) /
                         static_cast<double>(macsTotal)
                   : 0.0;
    }
};

/** Functional conv-layer engine with MERCURY computation reuse. */
class ConvReuseEngine
{
  public:
    /**
     * Run through a caller-provided MCACHE: builds an internal
     * DetectionFrontend view over it.
     *
     * @param cache    MCACHE instance to run through
     * @param sig_bits signature length for detection
     * @param seed     seed for the per-layer random projection
     * @param pipe     pipeline knobs (block size, threads; the
     *                 external cache is always a single shard)
     */
    ConvReuseEngine(MCache &cache, int sig_bits, uint64_t seed,
                    const PipelineConfig &pipe = {});

    /** Run through a shared detection front-end. */
    ConvReuseEngine(DetectionFrontend &frontend, int sig_bits);

    /**
     * Reuse-enabled forward convolution, channel by channel.
     *
     * @param input  (N, Cin, H, W)
     * @param weight (Cout, Cin, kH, kW) — groups == 1
     * @param bias   (Cout) or empty
     * @param stats  filled with the measured reuse statistics
     */
    Tensor forward(const Tensor &input, const Tensor &weight,
                   const Tensor &bias, const ConvSpec &spec,
                   ReuseStats &stats);

    /** Signature length this engine detects with. */
    int signatureBits() const { return frontend_.signatureBits(); }

  private:
    FrontendHandle frontend_;
};

} // namespace mercury

#endif // MERCURY_CORE_CONV_REUSE_ENGINE_HPP
