/**
 * @file
 * Functional convolution with MERCURY reuse (§III-C1).
 *
 * For every (image, channel) the engine extracts the input vectors,
 * runs the similarity detector, then performs the channel's filter
 * passes: HIT vectors take their dot product from MCACHE (the value
 * the matching MAU vector computed), MAU vectors compute and deposit
 * their result, MNU vectors compute without caching. Results
 * accumulate over channels exactly like the baseline convolution, so
 * the output differs from the exact convolution only by the
 * reuse-induced approximation — which is what the accuracy
 * experiments measure.
 *
 * Overlap (§III-B, Fig. 8): when the frontend's PipelineConfig has
 * `overlap` set and a worker pool is available, the engine consumes
 * the pipeline's streaming block hand-off — the first `versions`
 * filter passes run as per-filter SerialExecutor chains that start on
 * each block as it is delivered, while later blocks are still
 * hashing, and the remaining filter groups run `versions` filters in
 * parallel on the pool. Each filter processes its rows in stream
 * order (the MCACHE owner-writes-before-hit-reads discipline), so
 * outputs, hit/skip decisions, and statistics are bit-identical to
 * the serial run-then-filter path.
 *
 * Cross-channel overlap (ROADMAP): the extraction tensor is double
 * buffered, so in overlapped mode the engine extracts and *hashes*
 * channel c+1 (DetectionFrontend::beginHashStream — no MCACHE state
 * touched) while channel c's trailing filter groups are still
 * draining against the cache, hiding the serial extraction + hashing
 * fraction that the within-channel overlap could not reach.
 *
 * Backward (§III-C2): forward() optionally captures each channel
 * pass into a SignatureRecord; backwardInput() then computes the
 * input-gradient pass with the *same* reuse decisions, streamed back
 * through the block hand-off with zero detection cost. A forward-HIT
 * row reuses its owner row's grad-column products instead of
 * multiplying the output gradient into the kernel again; rows that
 * computed forward compute backward. With zero hits the result is
 * bit-identical to the exact input gradient (tensor/ops
 * conv2dBackwardInput): the scatter accumulates per input cell in
 * the exact path's (filter, output-position) order.
 *
 * Weight gradients (§III-C2 applied to Eq. 1): backwardWeights()
 * replays the same record over dW = X ⊛ dY. A forward-HIT row's
 * contribution x_hit ⊗ dy_hit factors through the owner's patch as
 * x_owner ⊗ (Σ dy over the owner's hit-group), so the pass first
 * sums the output gradients of each hit-group (cheap adds, charged
 * as per-group accumulate cycles in the timing model) and then does
 * one multiply per group — sum-then-multiply. With zero hits the
 * result is bit-identical to conv2dBackwardWeight; with hits it is
 * the exact dW up to the float-summation order of the grouped
 * gradient rows.
 *
 * Thread-safety: forward(), backwardInput(), and backwardWeights()
 * are driven by one thread; the filter tasks they spawn touch the
 * MCACHE data plane (forward) or engine-local grad-column / group-sum
 * buffers (backward) concurrently. Two threads must not call into one
 * engine (or two engines sharing a frontend) concurrently.
 *
 * Scheduling — serial vs overlapped execution, the per-filter stream
 * chains, and the grouped fan-outs — is delegated to ReuseRuntime
 * (core/reuse_runtime.hpp): each of the three passes is expressed as
 * a FilterPassSet descriptor, so this file holds only the conv shape
 * logic (patch extraction, group/filter geometry, scatter orders).
 * Grouped and depthwise convolutions (spec.groups > 1) are the same
 * descriptors over per-group filter ranges — no separate engine.
 *
 * The engine also reports the measured HIT/MAU/MNU mix and the MACs
 * skipped, which feed the timing model.
 */

#ifndef MERCURY_CORE_CONV_REUSE_ENGINE_HPP
#define MERCURY_CORE_CONV_REUSE_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mcache.hpp"
#include "core/reuse_runtime.hpp"
#include "core/runtime_planner.hpp"
#include "core/similarity_detector.hpp"
#include "pipeline/detection_frontend.hpp"
#include "sim/dataflow.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/**
 * Extract the (oh*ow, k*k) patch rows of one (image, channel) pass —
 * the Fig. 7a vector extraction shared by the forward detection pass,
 * the weight-gradient replay (which needs the owner patches back),
 * and the planner's cross-layer prefetch (which extracts the
 * successor's first channel while the predecessor drains). Reads
 * input.at4(b, c, ...) only, so any tensor holding the channel works.
 */
void extractChannelPatches(const Tensor &input, const ConvSpec &spec,
                           int64_t b, int64_t c, int64_t oh, int64_t ow,
                           Tensor &rows);

/**
 * Ranged form of extractChannelPatches: fill rows [r0, r1) only (row
 * r is output position (r / ow, r % ow); absolute indexing, so the
 * destination range is rows.data() + r0 * k * k onward). This is the
 * single-touch fusion entry: a detection pass hands it to the
 * pipeline as a RowFiller so each block's patches are extracted
 * immediately before they are hashed — one L2-sized walk instead of
 * an extract-everything pass followed by a hash-everything pass.
 * Disjoint ranges may run concurrently (pure span copies/zeros via
 * the extractPatches kernel; no shared mutable state).
 */
void extractChannelPatchRows(const Tensor &input, const ConvSpec &spec,
                             int64_t b, int64_t c, int64_t ow, int64_t r0,
                             int64_t r1, Tensor &rows);

/** Functional conv-layer engine with MERCURY computation reuse. */
class ConvReuseEngine
{
  public:
    /**
     * Run through a caller-provided MCACHE: builds an internal
     * DetectionFrontend view over it.
     *
     * @param cache    MCACHE instance to run through
     * @param sig_bits signature length for detection
     * @param seed     seed for the per-layer random projection
     * @param pipe     pipeline knobs (block size, threads; the
     *                 external cache is always a single shard)
     */
    ConvReuseEngine(MCache &cache, int sig_bits, uint64_t seed,
                    const PipelineConfig &pipe = {});

    /** Run through a shared detection front-end. */
    ConvReuseEngine(DetectionFrontend &frontend, int sig_bits);

    /**
     * Reuse-enabled forward convolution, channel by channel.
     *
     * @param input  (N, Cin, H, W)
     * @param weight (Cout, Cin, kH, kW) — groups == 1
     * @param bias   (Cout) or empty
     * @param stats  filled with the measured reuse statistics
     * @param record when non-null, cleared and then filled with one
     *        captured pass per (image, channel) in execution order,
     *        for the backward replay (§III-C2)
     * @param plan   planned execution state (core/runtime_planner.hpp):
     *        when non-null the pass reuses the slot's persistent
     *        ReuseRuntime and preallocated buffers instead of
     *        rebuilding them, consumes a cross-layer prefetched hash
     *        job as its first pass when one is armed, and fires the
     *        slot's own prefetch edge for the successor layer.
     *        Outputs and statistics are bit-identical either way.
     */
    Tensor forward(const Tensor &input, const Tensor &weight,
                   const Tensor &bias, const ConvSpec &spec,
                   ReuseStats &stats, SignatureRecord *record = nullptr,
                   ConvPlanSlot *plan = nullptr);

    /**
     * Input-gradient pass with replayed reuse (§III-C2): consumes the
     * record captured by forward() — in the same (image, channel)
     * order — to skip the grad-column products of every forward-HIT
     * row. Bit-identical to conv2dBackwardInput when the record holds
     * no hits.
     *
     * @param gradOut (N, Cout, outH, outW) output gradient
     * @param weight  the forward weights
     * @param in_h    input height the gradient is scattered back to
     * @param in_w    input width
     * @param record  the forward pass's captured record
     * @param stats   filled with the backward reuse statistics
     * @param plan    planned execution state (see forward())
     */
    Tensor backwardInput(const Tensor &gradOut, const Tensor &weight,
                         const ConvSpec &spec, int64_t in_h, int64_t in_w,
                         const SignatureRecord &record, ReuseStats &stats,
                         ConvPlanSlot *plan = nullptr);

    /**
     * Weight-gradient pass with replayed reuse (§III-C2, Eq. 1):
     * consumes the record captured by forward() — in the same
     * (image, channel) order — to factor every forward-HIT row's
     * dW contribution through its owner's patch (sum-then-multiply).
     * Bit-identical to conv2dBackwardWeight when the record holds no
     * hits; exact up to float-summation order of the grouped output
     * gradients otherwise.
     *
     * @param input   the forward input (patches are re-extracted)
     * @param gradOut (N, Cout, outH, outW) output gradient
     * @param record  the forward pass's captured record
     * @param stats   filled with the dW-pass reuse statistics
     * @param plan    planned execution state (see forward())
     */
    Tensor backwardWeights(const Tensor &input, const Tensor &gradOut,
                           const ConvSpec &spec,
                           const SignatureRecord &record,
                           ReuseStats &stats,
                           ConvPlanSlot *plan = nullptr);

    /** Signature length this engine detects with. */
    int signatureBits() const { return frontend_.signatureBits(); }

  private:
    FrontendHandle frontend_;
};

} // namespace mercury

#endif // MERCURY_CORE_CONV_REUSE_ENGINE_HPP
