#include "core/reuse_runtime.hpp"

#include <algorithm>
#include <memory>

#include "core/kernels/kernels.hpp"
#include "core/span_batcher.hpp"

namespace mercury {

DetectionResult
ReuseRuntime::deliver(const StreamSource &src, const BlockConsumer &cb)
{
    if (src.pass_) {
        fe_.replayStream(*src.pass_, cb);
        return DetectionResult{};
    }
    if (src.job_)
        return fe_.finishStream(*src.job_, cb, src.capture_);
    return fe_.detectStream(*src.rows_, bits_, cb, src.capture_,
                            src.fill_);
}

void
ReuseRuntime::sizeRowResults(const StreamSource &src)
{
    // Sized once, from the source's row count, before any block is
    // delivered — the stream callbacks and serial fills below only
    // write elements in place (capacity persists across passes, so
    // steady state never reallocates).
    if (!src.isReplay())
        rowResults_.resize(static_cast<size_t>(src.rowCount()));
}

DetectionResult
ReuseRuntime::consumeSerial(const StreamSource &src)
{
    if (src.pass_)
        return DetectionResult{};
    sizeRowResults(src);
    DetectionResult det;
    if (src.job_) {
        det = fe_.finishStream(
            *src.job_, [](const DetectionBlock &) {}, src.capture_);
    } else {
        det = fe_.detect(*src.rows_, bits_, src.capture_, src.fill_);
    }
    const int64_t n = det.hitmap.size();
    for (int64_t i = 0; i < n; ++i) {
        rowResults_[static_cast<size_t>(i)] = {det.hitmap.outcome(i),
                                               det.hitmap.entryId(i)};
    }
    return det;
}

void
ReuseRuntime::addPassStats(const StreamSource &src,
                           const DetectionResult &det, ReuseStats &stats)
{
    stats.mix += src.isReplay() ? src.pass_->mix : det.mix();
    ++stats.channelPasses;
}

void
ReuseRuntime::parallelChains(int64_t width,
                             const std::function<void(int64_t)> &fn)
{
    if (ThreadPool *p = pool()) {
        p->parallelFor(width, fn);
        return;
    }
    for (int64_t i = 0; i < width; ++i)
        fn(i);
}

DetectionResult
ReuseRuntime::runFilterPasses(const StreamSource &src,
                              const FilterPassSet &set, ReuseStats &stats)
{
    DetectionResult det;
    int64_t f_done = 0;
    passPool_ =
        overlappedFor(src.rowCount()) ? fe_.workerPool() : nullptr;

    if (ThreadPool *p = passPool_) {
        // The first in-flight group consumes the stream. Each serial
        // chain owns a contiguous RANGE of the group's filters: every
        // block of a filter flows through one chain in delivery order
        // (owner-before-hit within a filter), distinct chains run in
        // parallel, and later blocks still hash. Chain width is
        // capped at the pool's executor count — more chains than
        // executors cannot add parallelism, only task churn (the
        // in-flight group can be as wide as every filter of the pass
        // when the engine's per-filter state allows it).
        const int64_t group0 =
            std::min<int64_t>(set.inFlight, set.filters);
        const int64_t nchains = std::min<int64_t>(
            group0, static_cast<int64_t>(p->workers()) + 1);
        const bool live = !src.isReplay();
        sizeRowResults(src);

        if (nchains == 1) {
            // A single consumer chain cannot run in parallel with
            // itself: its tasks would execute the same segments in
            // the same delivery order the callback runs in, so
            // chaining buys nothing and pays a task hand-off per
            // block (the depthwise-dW wall collapse: 1 filter group
            // per pass, every block a round trip through the pool).
            // Run the range inline in the delivery callback —
            // identical segment order, zero scheduling.
            uint64_t s = 0;
            det = deliver(src, [&](const DetectionBlock &blk) {
                if (live) {
                    std::copy(blk.results, blk.results + blk.rows(),
                              rowResults_.begin() + blk.row0);
                }
                for (int64_t f = 0; f < group0; ++f)
                    s += set.segment(f, blk.row0, blk.row1);
            });
            stats.macsSkipped += s;
            if (set.onStreamDelivered)
                set.onStreamDelivered();
            if (set.onChainDrained)
                set.onChainDrained(0, group0);
        } else {
            // The consumer chains are runtime members reused across
            // channel passes; a drained SerialExecutor is safely
            // re-armed by its next run().
            while (static_cast<int64_t>(chains_.size()) < nchains)
                chains_.push_back(std::make_unique<SerialExecutor>(p));
            std::vector<uint64_t> skipped(static_cast<size_t>(nchains),
                                          0);
            det = deliver(src, [&](const DetectionBlock &blk) {
                if (live) {
                    // The block's result pointers die with the
                    // callback; copy into runtime-owned storage the
                    // chains can read asynchronously.
                    std::copy(blk.results, blk.results + blk.rows(),
                              rowResults_.begin() + blk.row0);
                }
                for (int64_t c = 0; c < nchains; ++c) {
                    const int64_t f0 = c * group0 / nchains;
                    const int64_t f1 = (c + 1) * group0 / nchains;
                    chains_[static_cast<size_t>(c)]->run(
                        [&set, &skipped, c, f0, f1, r0 = blk.row0,
                         r1 = blk.row1] {
                            uint64_t s = 0;
                            for (int64_t f = f0; f < f1; ++f)
                                s += set.segment(f, r0, r1);
                            skipped[static_cast<size_t>(c)] += s;
                        });
                }
            });
            // Cross-channel overlap window: the stream has delivered
            // but the chains may still be draining.
            if (set.onStreamDelivered)
                set.onStreamDelivered();
            for (int64_t c = 0; c < nchains; ++c) {
                chains_[static_cast<size_t>(c)]->wait();
                // Chain c's filter range [f0, f1) is final for every
                // row of the pass: earlier chains have joined and
                // within the chain segments ran in delivery order.
                // The planner's cross-layer edge fires here — the
                // successor layer's hash launches while chains c+1..
                // still drain.
                if (set.onChainDrained)
                    set.onChainDrained(c * group0 / nchains,
                                       (c + 1) * group0 / nchains);
            }
            for (const uint64_t s : skipped)
                stats.macsSkipped += s;
        }
        if (set.afterGroup)
            set.afterGroup(0, group0);
        f_done = group0;
    } else {
        det = consumeSerial(src);
        if (set.onStreamDelivered)
            set.onStreamDelivered();
    }

    // Remaining groups run whole-range: the stream has drained, so
    // every filter covers rows [0, rows) in one segment; filters of a
    // group fan out over the pool (each is a whole-row-range chain,
    // so the owner-before-hit order within a filter still holds).
    for (int64_t f0 = f_done; f0 < set.filters; f0 += set.inFlight) {
        const int64_t f1 =
            std::min<int64_t>(f0 + set.inFlight, set.filters);
        if (set.beforeGroup)
            set.beforeGroup(f0, f1);
        std::vector<uint64_t> skipped(static_cast<size_t>(f1 - f0), 0);
        parallelChains(f1 - f0, [&](int64_t i) {
            skipped[static_cast<size_t>(i)] =
                set.segment(f0 + i, 0, set.rows);
        });
        for (const uint64_t s : skipped)
            stats.macsSkipped += s;
        if (set.afterGroup)
            set.afterGroup(f0, f1);
    }

    addPassStats(src, det, stats);
    return det;
}

DetectionResult
ReuseRuntime::runRows(const StreamSource &src, const RowPass &pass,
                      ReuseStats &stats)
{
    DetectionResult det;
    passPool_ =
        overlappedFor(src.rowCount()) ? fe_.workerPool() : nullptr;

    if (ThreadPool *p = passPool_) {
        // Computed rows of each delivered block fan out to the pool
        // while later blocks hash; forwarded rows are copied after
        // the joins (owners are always computed rows, so forwarding
        // chains have depth one). Bookkeeping runs on this thread in
        // stream order. All per-pass lists live in the runtime arena:
        // the computed slab is indexed by block start (each block's
        // batch is a stable slice the fanned-out task reads), and the
        // forward lists grow only on this thread.
        arena_.reset();
        const int64_t n = src.rowCount();
        int64_t *fwd_rows = arena_.indices(n);
        int64_t *fwd_owners = arena_.indices(n);
        int64_t *computed = arena_.indices(n);
        int64_t nfwd = 0;
        TaskGroup computes(p);
        det = deliver(src, [&](const DetectionBlock &blk) {
            int64_t *batch = computed + blk.row0;
            int64_t nc = 0;
            for (int64_t i = blk.row0; i < blk.row1; ++i) {
                const int64_t o =
                    pass.ownerOf(i, blk.results[i - blk.row0]);
                if (o != i) {
                    fwd_rows[nfwd] = i;
                    fwd_owners[nfwd] = o;
                    ++nfwd;
                    stats.macsSkipped += pass.rowSkipCost;
                } else {
                    batch[nc++] = i;
                }
            }
            if (nc > 0) {
                computes.run([&pass, batch, nc] {
                    for (int64_t j = 0; j < nc; ++j)
                        pass.computeRow(batch[j]);
                });
            }
        });
        computes.wait();
        // Coalesce adjacent forwards (rows and owners both stepping
        // by one) into span copies; the spans partition the forward
        // list, so span j is [starts[j], starts[j+1]).
        int64_t *starts = arena_.indices(nfwd);
        int64_t nspans = 0;
        forEachConsecutiveSpan(fwd_rows, fwd_owners, nfwd,
                               [&](int64_t i0, int64_t) {
                                   starts[nspans++] = i0;
                               });
        p->parallelFor(nspans, [&](int64_t j) {
            const int64_t i0 = starts[j];
            const int64_t i1 = j + 1 < nspans ? starts[j + 1] : nfwd;
            if (i1 - i0 > 1 && pass.copyRowSpan) {
                pass.copyRowSpan(fwd_rows[i0],
                                 fwd_rows[i0] + (i1 - i0),
                                 fwd_owners[i0]);
            } else {
                for (int64_t i = i0; i < i1; ++i)
                    pass.copyRow(fwd_rows[i], fwd_owners[i]);
            }
        });
    } else {
        det = consumeSerial(src);
        const int64_t n = src.rowCount();
        const bool live = !src.isReplay();
        for (int64_t i = 0; i < n; ++i) {
            const McacheResult res =
                live ? rowResults_[static_cast<size_t>(i)]
                     : McacheResult{};
            const int64_t o = pass.ownerOf(i, res);
            if (o != i) {
                pass.copyRow(i, o);
                stats.macsSkipped += pass.rowSkipCost;
                continue;
            }
            pass.computeRow(i);
        }
    }

    addPassStats(src, det, stats);
    return det;
}

DetectionResult
ReuseRuntime::runScan(const StreamSource &src, const ScanPass &pass,
                      ReuseStats &stats)
{
    DetectionResult det;
    passPool_ =
        overlappedFor(src.rowCount()) ? fe_.workerPool() : nullptr;

    if (ThreadPool *p = passPool_) {
        // The scan consumes the hand-off on the driving thread — no
        // block is independent of the ones before it — then the
        // finish items fan out, one disjoint slice per task.
        det = deliver(src, [&](const DetectionBlock &blk) {
            pass.scan(blk.row0, blk.row1);
        });
        if (pass.finishItems > 0)
            p->parallelFor(pass.finishItems, pass.finishItem);
    } else {
        det = consumeSerial(src);
        pass.scan(0, src.rowCount());
        for (int64_t i = 0; i < pass.finishItems; ++i)
            pass.finishItem(i);
    }

    addPassStats(src, det, stats);
    return det;
}

Tensor
weightGradReplay(ReuseRuntime &rt, const SignatureRecord &record,
                 const SignatureRecord::Pass &pass, const Tensor &a,
                 const Tensor &b, ReuseStats &stats)
{
    const int64_t n = pass.rows;
    const int64_t da = a.dim(1);
    const int64_t db = b.dim(1);
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);

    // Group sums over the pass's b-rows: the owner slot starts as a
    // copy of its own row (bit-exact for singleton groups), HIT rows
    // fold in with adds. Stream order guarantees the owner's copy
    // lands before any of its hits accumulate. The buffer comes from
    // the runtime's scratch arena (no per-pass allocation); owner
    // slots are always copy-initialized before any read and
    // non-owner slots are never read, so it needs no zero fill.
    rt.scratch().reset();
    float *gsum = rt.scratch().floats(n * db);
    Tensor out({da, db});
    const kernels::KernelOps &k = kernels::ops();

    ReuseRuntime::ScanPass scan;
    scan.scan = [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const int64_t o = owner[static_cast<size_t>(r)];
            float *dst = gsum + o * db;
            const float *src = b.data() + r * db;
            if (o == r) {
                k.copySpan(dst, src, db);
            } else {
                k.addSpan(dst, src, db);
                stats.macsSkipped += static_cast<uint64_t>(da) *
                                     static_cast<uint64_t>(db);
            }
        }
    };
    // One output row j of At B: one multiply per group, owners
    // ascending — the same contraction order (and zero-skip) as
    // matmul(transpose2d(a), b) walks for row j.
    scan.finishItems = da;
    scan.finishItem = [&](int64_t j) {
        float *oj = out.data() + j * db;
        for (int64_t r = 0; r < n; ++r) {
            if (owner[static_cast<size_t>(r)] != r)
                continue;
            const float av = a.at2(r, j);
            if (av == 0.0f)
                continue;
            k.axpy(oj, av, gsum + r * db, db);
        }
    };

    rt.runScan(ReuseRuntime::StreamSource::replay(pass), scan, stats);
    return out;
}

} // namespace mercury
