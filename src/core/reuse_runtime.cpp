#include "core/reuse_runtime.hpp"

#include <algorithm>
#include <memory>

namespace mercury {

DetectionResult
ReuseRuntime::deliver(const StreamSource &src, const BlockConsumer &cb)
{
    if (src.pass_) {
        fe_.replayStream(*src.pass_, cb);
        return DetectionResult{};
    }
    if (src.job_)
        return fe_.finishStream(*src.job_, cb, src.capture_);
    return fe_.detectStream(*src.rows_, bits_, cb, src.capture_);
}

DetectionResult
ReuseRuntime::consumeSerial(const StreamSource &src)
{
    if (src.pass_)
        return DetectionResult{};
    DetectionResult det;
    if (src.job_) {
        det = fe_.finishStream(
            *src.job_, [](const DetectionBlock &) {}, src.capture_);
    } else {
        det = fe_.detect(*src.rows_, bits_, src.capture_);
    }
    const int64_t n = det.hitmap.size();
    rowResults_.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        rowResults_[static_cast<size_t>(i)] = {det.hitmap.outcome(i),
                                               det.hitmap.entryId(i)};
    }
    return det;
}

void
ReuseRuntime::addPassStats(const StreamSource &src,
                           const DetectionResult &det, ReuseStats &stats)
{
    stats.mix += src.isReplay() ? src.pass_->mix : det.mix();
    ++stats.channelPasses;
}

void
ReuseRuntime::parallelChains(int64_t width,
                             const std::function<void(int64_t)> &fn)
{
    if (ThreadPool *p = pool()) {
        p->parallelFor(width, fn);
        return;
    }
    for (int64_t i = 0; i < width; ++i)
        fn(i);
}

DetectionResult
ReuseRuntime::runFilterPasses(const StreamSource &src,
                              const FilterPassSet &set, ReuseStats &stats)
{
    DetectionResult det;
    int64_t f_done = 0;

    if (overlapped()) {
        // The first in-flight group consumes the stream: one serial
        // chain per filter keeps that filter's blocks in delivery
        // order (owner-before-hit within a filter) while distinct
        // filters run in parallel and later blocks still hash.
        ThreadPool *p = pool();
        const int64_t group0 =
            std::min<int64_t>(set.inFlight, set.filters);
        std::vector<std::unique_ptr<SerialExecutor>> chains;
        std::vector<uint64_t> skipped(static_cast<size_t>(group0), 0);
        chains.reserve(static_cast<size_t>(group0));
        for (int64_t f = 0; f < group0; ++f)
            chains.push_back(std::make_unique<SerialExecutor>(p));

        const bool live = !src.isReplay();
        if (live)
            rowResults_.resize(static_cast<size_t>(src.rowCount()));
        det = deliver(src, [&](const DetectionBlock &blk) {
            if (live) {
                // The block's result pointers die with the callback;
                // copy into runtime-owned storage the chains can read
                // asynchronously.
                std::copy(blk.results, blk.results + blk.rows(),
                          rowResults_.begin() + blk.row0);
            }
            for (int64_t f = 0; f < group0; ++f) {
                chains[static_cast<size_t>(f)]->run(
                    [&set, &skipped, f, r0 = blk.row0, r1 = blk.row1] {
                        skipped[static_cast<size_t>(f)] +=
                            set.segment(f, r0, r1);
                    });
            }
        });
        // Cross-channel overlap window: the stream has delivered but
        // the chains may still be draining.
        if (set.onStreamDelivered)
            set.onStreamDelivered();
        for (auto &chain : chains)
            chain->wait();
        for (const uint64_t s : skipped)
            stats.macsSkipped += s;
        if (set.afterGroup)
            set.afterGroup(0, group0);
        f_done = group0;
    } else {
        det = consumeSerial(src);
        if (set.onStreamDelivered)
            set.onStreamDelivered();
    }

    // Remaining groups run whole-range: the stream has drained, so
    // every filter covers rows [0, rows) in one segment; filters of a
    // group fan out over the pool (each is a whole-row-range chain,
    // so the owner-before-hit order within a filter still holds).
    for (int64_t f0 = f_done; f0 < set.filters; f0 += set.inFlight) {
        const int64_t f1 =
            std::min<int64_t>(f0 + set.inFlight, set.filters);
        if (set.beforeGroup)
            set.beforeGroup(f0, f1);
        std::vector<uint64_t> skipped(static_cast<size_t>(f1 - f0), 0);
        parallelChains(f1 - f0, [&](int64_t i) {
            skipped[static_cast<size_t>(i)] =
                set.segment(f0 + i, 0, set.rows);
        });
        for (const uint64_t s : skipped)
            stats.macsSkipped += s;
        if (set.afterGroup)
            set.afterGroup(f0, f1);
    }

    addPassStats(src, det, stats);
    return det;
}

DetectionResult
ReuseRuntime::runRows(const StreamSource &src, const RowPass &pass,
                      ReuseStats &stats)
{
    DetectionResult det;

    if (overlapped()) {
        // Computed rows of each delivered block fan out to the pool
        // while later blocks hash; forwarded rows are copied after
        // the joins (owners are always computed rows, so forwarding
        // chains have depth one). Bookkeeping runs on this thread in
        // stream order.
        ThreadPool *p = pool();
        TaskGroup computes(p);
        struct Forward
        {
            int64_t row;
            int64_t owner;
        };
        std::vector<Forward> forwards;
        det = deliver(src, [&](const DetectionBlock &blk) {
            std::vector<int64_t> computed;
            for (int64_t i = blk.row0; i < blk.row1; ++i) {
                const int64_t o =
                    pass.ownerOf(i, blk.results[i - blk.row0]);
                if (o != i) {
                    forwards.push_back({i, o});
                    stats.macsSkipped += pass.rowSkipCost;
                } else {
                    computed.push_back(i);
                }
            }
            if (!computed.empty()) {
                computes.run([&pass, batch = std::move(computed)] {
                    for (const int64_t i : batch)
                        pass.computeRow(i);
                });
            }
        });
        computes.wait();
        p->parallelFor(
            static_cast<int64_t>(forwards.size()), [&](int64_t k) {
                const Forward fwd = forwards[static_cast<size_t>(k)];
                pass.copyRow(fwd.row, fwd.owner);
            });
    } else {
        det = consumeSerial(src);
        const int64_t n = src.rowCount();
        const bool live = !src.isReplay();
        for (int64_t i = 0; i < n; ++i) {
            const McacheResult res =
                live ? rowResults_[static_cast<size_t>(i)]
                     : McacheResult{};
            const int64_t o = pass.ownerOf(i, res);
            if (o != i) {
                pass.copyRow(i, o);
                stats.macsSkipped += pass.rowSkipCost;
                continue;
            }
            pass.computeRow(i);
        }
    }

    addPassStats(src, det, stats);
    return det;
}

DetectionResult
ReuseRuntime::runScan(const StreamSource &src, const ScanPass &pass,
                      ReuseStats &stats)
{
    DetectionResult det;

    if (overlapped()) {
        // The scan consumes the hand-off on the driving thread — no
        // block is independent of the ones before it — then the
        // finish items fan out, one disjoint slice per task.
        det = deliver(src, [&](const DetectionBlock &blk) {
            pass.scan(blk.row0, blk.row1);
        });
        if (pass.finishItems > 0)
            pool()->parallelFor(pass.finishItems, pass.finishItem);
    } else {
        det = consumeSerial(src);
        pass.scan(0, src.rowCount());
        for (int64_t i = 0; i < pass.finishItems; ++i)
            pass.finishItem(i);
    }

    addPassStats(src, det, stats);
    return det;
}

Tensor
weightGradReplay(ReuseRuntime &rt, const SignatureRecord &record,
                 const SignatureRecord::Pass &pass, const Tensor &a,
                 const Tensor &b, ReuseStats &stats)
{
    const int64_t n = pass.rows;
    const int64_t da = a.dim(1);
    const int64_t db = b.dim(1);
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);

    // Group sums over the pass's b-rows: the owner slot starts as a
    // copy of its own row (bit-exact for singleton groups), HIT rows
    // fold in with adds. Stream order guarantees the owner's copy
    // lands before any of its hits accumulate.
    std::vector<float> gsum(static_cast<size_t>(n * db), 0.0f);
    Tensor out({da, db});

    ReuseRuntime::ScanPass scan;
    scan.scan = [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const int64_t o = owner[static_cast<size_t>(r)];
            float *dst = gsum.data() + o * db;
            const float *src = b.data() + r * db;
            if (o == r) {
                std::copy(src, src + db, dst);
            } else {
                for (int64_t p = 0; p < db; ++p)
                    dst[p] += src[p];
                stats.macsSkipped += static_cast<uint64_t>(da) *
                                     static_cast<uint64_t>(db);
            }
        }
    };
    // One output row j of At B: one multiply per group, owners
    // ascending — the same contraction order (and zero-skip) as
    // matmul(transpose2d(a), b) walks for row j.
    scan.finishItems = da;
    scan.finishItem = [&](int64_t j) {
        for (int64_t r = 0; r < n; ++r) {
            if (owner[static_cast<size_t>(r)] != r)
                continue;
            const float av = a.at2(r, j);
            if (av == 0.0f)
                continue;
            const float *gs = gsum.data() + r * db;
            for (int64_t p = 0; p < db; ++p)
                out.at2(j, p) += av * gs[p];
        }
    };

    rt.runScan(ReuseRuntime::StreamSource::replay(pass), scan, stats);
    return out;
}

} // namespace mercury
