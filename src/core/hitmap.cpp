#include "core/hitmap.hpp"

#include "util/logging.hpp"

namespace mercury {

Hitmap::Hitmap(int64_t vectors)
{
    reset(vectors);
}

void
Hitmap::reset(int64_t vectors)
{
    if (vectors < 0)
        panic("negative hitmap size ", vectors);
    entries_.assign(static_cast<size_t>(vectors), Entry{});
}

const Hitmap::Entry &
Hitmap::at(int64_t i) const
{
    if (i < 0 || i >= size())
        panic("hitmap index ", i, " out of range for ", size());
    return entries_[static_cast<size_t>(i)];
}

void
Hitmap::record(int64_t i, const McacheResult &result)
{
    if (i < 0 || i >= size())
        panic("hitmap index ", i, " out of range for ", size());
    Entry &e = entries_[static_cast<size_t>(i)];
    e.outcome = result.outcome;
    e.entryId = result.entryId;
    e.recorded = true;
}

McacheOutcome
Hitmap::outcome(int64_t i) const
{
    return at(i).outcome;
}

int64_t
Hitmap::entryId(int64_t i) const
{
    return at(i).entryId;
}

HitMix
Hitmap::mix() const
{
    HitMix m;
    m.vectors = size();
    for (const Entry &e : entries_) {
        switch (e.outcome) {
          case McacheOutcome::Hit:
            ++m.hit;
            break;
          case McacheOutcome::Mau:
            ++m.mau;
            break;
          case McacheOutcome::Mnu:
            ++m.mnu;
            break;
        }
    }
    return m;
}

} // namespace mercury
