/**
 * @file
 * PassArena: reusable, cache-aligned scratch storage for the reuse
 * passes, plus the arena-backed per-pass data plane the convolution
 * forward runs HIT forwarding through.
 *
 * ## PassArena
 *
 * A bump allocator over a list of 64-byte-aligned chunks. take()
 * calls bump within the current chunk; reset() rewinds to the first
 * chunk WITHOUT freeing, so a steady-state pass sequence (the 64
 * channel passes of one conv layer call, say) allocates on the first
 * pass and reuses the same cache-hot memory on every later one —
 * replacing the per-block / per-pass std::vector churn the profile
 * showed in the scheduler hot loops.
 *
 * Lifetime contract: pointers from take() stay valid until the next
 * reset() (chunks never move or free before then). reset() must not
 * run while any task still reads an arena pointer — the scheduler
 * resets only at run* entry, after every task of the previous pass
 * has joined. One thread calls take()/reset(); worker tasks may read
 * and write the taken buffers concurrently as long as they partition
 * them (the same rule any shared output buffer obeys).
 *
 * ## PassDataPlane
 *
 * The flat (version, entry) value/valid store that replaces the
 * MCACHE data plane for conv-forward HIT forwarding. The ShardedMCache
 * data plane serialized every read/write behind a per-shard mutex —
 * millions of locked operations per overlapped layer pass. The reuse
 * scheduler's ordering contract makes that locking unnecessary:
 * within one in-flight filter group each filter owns one distinct
 * version slot, a filter's segments are chained in stream order
 * (owner deposit happens-before hit read on the same chain), and
 * groups are separated by joins — so no two threads ever touch the
 * same (version, entry) cell, and plain unsynchronized loads/stores
 * are race-free. Validity lives in bytes, not packed bits: two
 * filters writing neighboring entries must not share a memory
 * location. invalidateAll() requires quiescence (driving thread,
 * between groups), exactly like MCache::invalidateAllData.
 */

#ifndef MERCURY_CORE_PASS_ARENA_HPP
#define MERCURY_CORE_PASS_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "util/prefetch.hpp"

namespace mercury {

/** Cache-aligned bump arena; storage persists across reset(). */
class PassArena
{
  public:
    PassArena() = default;
    PassArena(const PassArena &) = delete;
    PassArena &operator=(const PassArena &) = delete;

    ~PassArena()
    {
        for (Chunk &c : chunks_)
            ::operator delete(c.mem, std::align_val_t(kAlign));
    }

    /** Rewind to the start; every previously taken pointer dies. */
    void reset()
    {
        chunk_ = 0;
        used_ = 0;
    }

    /** Uninitialized 64-byte-aligned buffer of n floats. */
    float *floats(int64_t n) { return take<float>(n); }

    /** Uninitialized 64-byte-aligned buffer of n indices. */
    int64_t *indices(int64_t n) { return take<int64_t>(n); }

    /** Uninitialized 64-byte-aligned buffer of n bytes. */
    uint8_t *bytes(int64_t n) { return take<uint8_t>(n); }

  private:
    static constexpr size_t kAlign = 64;
    static constexpr size_t kMinChunk = 1 << 16;

    struct Chunk
    {
        void *mem;
        size_t cap;
    };

    template <typename T>
    T *take(int64_t n)
    {
        const size_t bytes =
            (static_cast<size_t>(n) * sizeof(T) + kAlign - 1) &
            ~(kAlign - 1);
        while (chunk_ < chunks_.size() &&
               used_ + bytes > chunks_[chunk_].cap) {
            ++chunk_;
            used_ = 0;
        }
        if (chunk_ == chunks_.size()) {
            const size_t cap =
                bytes > kMinChunk
                    ? (bytes + kMinChunk - 1) & ~(kMinChunk - 1)
                    : kMinChunk;
            chunks_.push_back(
                {::operator new(cap, std::align_val_t(kAlign)), cap});
            used_ = 0;
        }
        T *p = reinterpret_cast<T *>(
            static_cast<char *>(chunks_[chunk_].mem) + used_);
        used_ += bytes;
        return p;
    }

    std::vector<Chunk> chunks_;
    size_t chunk_ = 0; ///< chunk currently bumping
    size_t used_ = 0;  ///< bytes used in that chunk
};

/** Lock-free (version, entry) value store for conv HIT forwarding. */
class PassDataPlane
{
  public:
    /**
     * Size the plane (reallocates only on growth/shape change) and
     * invalidate every cell. Driving thread, between passes.
     */
    void configure(int64_t entries, int versions)
    {
        entries_ = entries;
        versions_ = versions;
        const size_t cells = static_cast<size_t>(entries) *
                             static_cast<size_t>(versions);
        if (values_.size() < cells) {
            values_.resize(cells);
            valid_.resize(cells);
        }
        invalidateAll();
    }

    /** Clear every validity byte. Requires quiescence. */
    void invalidateAll()
    {
        if (!valid_.empty())
            std::memset(valid_.data(), 0,
                        static_cast<size_t>(entries_) *
                            static_cast<size_t>(versions_));
    }

    /** Valid-check + read of one cell (callers own the slot). */
    bool readIfValid(int64_t entry, int version, float &value) const
    {
        const size_t c = cell(entry, version);
        if (!valid_[c])
            return false;
        value = values_[c];
        return true;
    }

    /** Deposit one cell and mark it valid. */
    void write(int64_t entry, int version, float value)
    {
        const size_t c = cell(entry, version);
        values_[c] = value;
        valid_[c] = 1;
    }

    /**
     * Hint a future readIfValid(entry, version) into cache (the
     * filter-segment walk prefetches row i+1's slot while row i's dot
     * product runs). Out-of-range entries (MNU rows carry -1) no-op.
     */
    void prefetch(int64_t entry, int version) const
    {
        if (entry < 0 || entry >= entries_)
            return;
        const size_t c = cell(entry, version);
        prefetchRead(&values_[c]);
        prefetchRead(&valid_[c]);
    }

    int64_t entries() const { return entries_; }
    int versions() const { return versions_; }

  private:
    // Version-major layout: one filter's slot is a contiguous
    // entries_-sized region, so a chained filter's reads and writes
    // stay within its own cache lines.
    size_t cell(int64_t entry, int version) const
    {
        return static_cast<size_t>(version) *
                   static_cast<size_t>(entries_) +
               static_cast<size_t>(entry);
    }

    int64_t entries_ = 0;
    int versions_ = 0;
    std::vector<float> values_;
    std::vector<uint8_t> valid_;
};

} // namespace mercury

#endif // MERCURY_CORE_PASS_ARENA_HPP
