/**
 * @file
 * RuntimePlanner: ahead-of-time compilation of one training step's
 * pass graph into a reusable StepPlan (ROADMAP "compile the pass
 * graph once, execute steps as replay of a precomputed plan").
 *
 * Every unplanned step re-derives the same work: each layer re-builds
 * its ReuseRuntime pass descriptors, re-resolves the tuning knobs
 * (tunedPipelineFor / resolvedShards), re-allocates its extraction /
 * grad-column / group-sum buffers, and drains the worker pool to a
 * hard barrier before the next layer starts. None of that depends on
 * the batch *values* — only on layer shapes and configuration — so
 * the planner walks the network's step description once and emits:
 *
 *  - a LayerPlan per reuse-capable layer: resolved pass geometry
 *    (rows, vector dim, pass count, in-flight filter width, backward
 *    slot count), the per-shape pipeline knobs resolved exactly once,
 *    the planned buffer high-water (double-buffered extraction
 *    tensors, grad-column and group-sum slots sized to the MCACHE
 *    data-version width), and the SignatureRecord hold/spill decision
 *    (storage-byte prediction vs the hold threshold) made at plan
 *    time instead of per step;
 *
 *  - dependency edges between adjacent conv layers separated only by
 *    channelwise transforms (ReLU / 2x2 max pool): across such an
 *    edge the successor's first detection/hash pass launches while
 *    the predecessor's trailing filter ranges drain (cross-LAYER
 *    overlap — the extension of the engines' cross-channel overlap).
 *    Channelwise transforms keep channel 0 of image 0 self-contained,
 *    so the successor's first channel pass can be extracted and
 *    hashed the moment the predecessor's first in-flight chain has
 *    drained filter 0 — hashing touches only the row tensor and
 *    cache geometry (DetectionHashJob contract), never MCACHE state,
 *    so the MCACHE owner-before-hit ordering contract needs no
 *    barrier there. Barriers remain only where that contract (or a
 *    genuine data dependence through a non-channelwise op) requires
 *    them; StepPlan counts both.
 *
 * Plans are immutable and shareable: a StepPlan holds no frontend or
 * cache pointers, so one PlanCache can serve every same-shape session
 * of a MercuryServer. The mutable half — persistent ReuseRuntimes,
 * planned tensors, armed prefetch closures — lives in a per-context
 * PlanExec built by buildPlanExec() and invalidated whenever the
 * context's frontends are (setPipeline / setSignatureBits /
 * setLayerCacheProvider).
 *
 * Plan-cache keying: FNV-1a over the ordered step description (op
 * kinds, layer ids, conv specs with resolved input spatial dims,
 * dense/attention dims, batch) plus every knob that changes pass
 * construction — signature bits, MCACHE organization (sets / ways /
 * data versions), pipeline knobs (block rows, shards, threads,
 * overlap, persistent), and the backward / weight-gradient capture
 * flags. Anything else (seeds, weights, batch values) affects values,
 * not structure, and is deliberately outside the key.
 */

#ifndef MERCURY_CORE_RUNTIME_PLANNER_HPP
#define MERCURY_CORE_RUNTIME_PLANNER_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/reuse_runtime.hpp"
#include "pipeline/detection_frontend.hpp"
#include "sim/layer_shape.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** One op of a network's step description (forward order). */
enum class StepOpKind
{
    Conv,       ///< reuse-capable convolution
    Dense,      ///< reuse-capable fully connected layer
    Attention,  ///< reuse-capable self-attention
    Relu,       ///< channelwise; fusable across a conv→conv edge
    MaxPool2x2, ///< channelwise; fusable across a conv→conv edge
    Opaque,     ///< anything else; breaks shape tracking and fusion
};

/** Static description of one layer's step contribution. */
struct LayerStepDesc
{
    StepOpKind kind = StepOpKind::Opaque;
    uint64_t layerId = 0;

    // Conv: spec plus the input spatial dims resolved by the walk.
    ConvSpec conv;
    int64_t inH = 0;
    int64_t inW = 0;

    // Dense.
    int64_t inFeatures = 0;
    int64_t outFeatures = 0;

    // Attention.
    int64_t seqLen = 0;
    int64_t embedDim = 0;
};

/**
 * Collects a network's step description in one forward walk
 * (Layer::describeStep). Tracks the activation shape so conv layers
 * get resolved spatial dims; an Opaque op (or a shape the tracker
 * cannot follow) invalidates 4D tracking — a later conv then marks
 * the whole plan unplannable and every layer runs the unplanned path
 * (bit-identical either way; planning is purely a schedule).
 */
class StepDescBuilder
{
  public:
    explicit StepDescBuilder(const std::vector<int64_t> &input_shape);

    void conv(uint64_t layer_id, const ConvSpec &spec);
    void dense(uint64_t layer_id, int64_t in_features,
               int64_t out_features);
    void attention(uint64_t layer_id, int64_t seq_len, int64_t embed_dim);
    void relu();
    void maxPool2x2();
    void opaque();

    const std::vector<LayerStepDesc> &ops() const { return ops_; }
    int64_t batch() const { return batch_; }
    /** False once a conv was described with untrackable input shape. */
    bool plannable() const { return plannable_; }

  private:
    std::vector<LayerStepDesc> ops_;
    int64_t batch_ = 0;
    // Tracked 4D activation shape (valid4d_ false after flatten /
    // GAP / opaque ops — dense and attention do not need it).
    bool valid4d_ = false;
    int64_t c_ = 0, h_ = 0, w_ = 0;
    bool plannable_ = true;
};

/** Config slice that participates in the plan key (see file header). */
struct PlanKeyConfig
{
    int sigBits = 0;
    int sets = 0;
    int ways = 0;
    int dataVersions = 0;
    PipelineConfig pipe;
    bool backwardReuse = false;
    bool weightGradReuse = false;
};

/** Compiled per-layer schedule of one step (immutable). */
struct LayerPlan
{
    LayerStepDesc desc;

    // Pass geometry resolved at compile time.
    int64_t rows = 0;     ///< vectors per detection pass
    int64_t vecDim = 0;   ///< extracted vector dimensionality
    int64_t passes = 0;   ///< detection passes per forward invocation
    int64_t outH = 0;     ///< conv output spatial dims
    int64_t outW = 0;
    int64_t inFlight = 0; ///< conv filters in flight (cout / groups)
    int64_t backwardSlots = 0; ///< grad-column slots (min(versions, inFlight))

    /** Pipeline knobs resolved once per shape (satellite: the
     *  per-pass tunedPipelineFor / resolvedShards churn is hoisted
     *  here and to DetectionFrontend::resolvedPipeFor). Includes the
     *  resolved overlap decision — pipe.overlap is On or Off here,
     *  never Auto (PipelineConfig::resolvedOverlapFor applied to this
     *  layer's rows at compile time). */
    PipelineConfig pipe;

    /** Planned buffer high-water in floats (extraction double-buffer,
     *  grad columns, group sums) — what PlanExec preallocates. */
    uint64_t scratchFloats = 0;

    /** Predicted SignatureRecord bytes of a captured forward, and the
     *  plan-time hold (true) vs spill (false) decision the timing
     *  model charges for (functional execution always holds — host
     *  memory is the spill target). */
    uint64_t recordBytes = 0;
    bool holdRecord = true;

    // Cross-layer dependency edge (conv→conv through channelwise
    // transforms only). Indices into StepPlan::layers; -1 = none.
    int nextConv = -1;
    int prevConv = -1;
    /** Transforms interposed on the fused edge, in forward order
     *  (Relu / MaxPool2x2 only). */
    std::vector<StepOpKind> edgeTransforms;
};

/** Compiled whole-step schedule (immutable, shareable, cache-keyed). */
struct StepPlan
{
    uint64_t key = 0;
    int64_t batch = 0;
    bool plannable = false;
    /** Reuse-capable layers in forward order. */
    std::vector<LayerPlan> layers;
    /** Knob resolutions compile performed (once per layer shape). */
    int knobResolutions = 0;
    /** Layer-boundary joins the ordering contract retains. */
    int stepBarriers = 0;
    /** Conv→conv edges scheduled for cross-layer overlap. */
    int fusedEdges = 0;

    /** Plan for layer `layer_id`, or null. */
    const LayerPlan *layerPlan(uint64_t layer_id) const;
};

/** Walks a step description once and emits the compiled plan. */
class RuntimePlanner
{
  public:
    /** Cache key of the plan compile() would emit (cheap; no plan
     *  construction). Stable across processes for identical input. */
    static uint64_t planKey(const StepDescBuilder &desc,
                            const PlanKeyConfig &cfg);

    static std::shared_ptr<const StepPlan>
    compile(const StepDescBuilder &desc, const PlanKeyConfig &cfg);
};

/**
 * Keyed store of compiled plans. Thread-safe (a MercuryServer shares
 * one across sessions); plans are immutable so a found plan needs no
 * further synchronization.
 */
class PlanCache
{
  public:
    std::shared_ptr<const StepPlan> find(uint64_t key) const;
    void insert(std::shared_ptr<const StepPlan> plan);
    void clear();
    int64_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<uint64_t, std::shared_ptr<const StepPlan>> plans_;
};

/**
 * Mutable conv execution state of one bound plan (per context):
 * the persistent ReuseRuntime and every buffer the unplanned path
 * allocates per step, preallocated at bind time, plus the armed
 * cross-layer prefetch edge. One thread drives a slot at a time (the
 * same single-caller contract as the engines).
 */
struct ConvPlanSlot
{
    const LayerPlan *plan = nullptr;
    std::unique_ptr<ReuseRuntime> runtime;

    /** Double-buffered extraction tensors (cross-channel overlap). */
    Tensor bufs[2];
    /** Prebuilt (image, group, channel) pass order. */
    struct PassId
    {
        int64_t b = 0, g = 0, ic = 0;
    };
    std::vector<PassId> order;

    /** Backward grad-column slots (dX) and group sums (dW). */
    std::vector<std::vector<float>> cols;
    std::vector<std::vector<float>> gcols;
    std::vector<int64_t> owner;
    Tensor dwRows; ///< dW patch re-extraction buffer

    /**
     * Cross-layer overlap, producing side: armed by buildPlanExec on
     * a fused edge's predecessor. The conv engine fires it once the
     * pass completing (image 0, group 0, last input channel) has
     * drained its first in-flight chain — output channel 0 of image 0
     * is final there — handing the successor's first-channel hash to
     * the pool while this layer's trailing filter ranges drain.
     */
    std::function<void(const Tensor &out)> prefetchNext;
    int64_t prefetchAfterPass = -1;

    /** Consuming side: the successor's planned row buffer and the
     *  in-flight hash job its forward consumes as pass 0. The staging
     *  tensors are slot members (not fireConvPrefetch locals) because
     *  the job's fused extraction reads them from pool workers until
     *  the job is consumed or reset. */
    Tensor prefetchRows;
    Tensor edgeSlice; ///< channel-0 staging of the predecessor output
    Tensor edgePlane; ///< edge-transform result the filler reads
    std::unique_ptr<DetectionHashJob> prefetched;
};

/** Mutable row-pass execution state (dense / attention layers). */
struct RowPlanSlot
{
    const LayerPlan *plan = nullptr;
    std::unique_ptr<ReuseRuntime> runtime;
    std::vector<int64_t> ownerOfEntry;
    std::vector<int64_t> owner;
};

/** A bound plan plus its per-layer execution slots. */
struct PlanExec
{
    std::shared_ptr<const StepPlan> plan;
    std::map<uint64_t, std::unique_ptr<ConvPlanSlot>> conv;
    std::map<uint64_t, std::unique_ptr<RowPlanSlot>> row;

    ConvPlanSlot *convSlot(uint64_t layer_id);
    RowPlanSlot *rowSlot(uint64_t layer_id);
};

/**
 * Backend-neutral replay record of one layer's detection passes,
 * exported from a compiled StepPlan for consumers that model (rather
 * than execute) the step — the event-model backend replays these
 * through its memory hierarchy, so the timing study and the
 * functional executor share one workload definition (ROADMAP
 * "plan-driven multi-backend dispatch").
 */
struct PassDescriptor
{
    uint64_t layerId = 0;
    StepOpKind kind = StepOpKind::Opaque;

    // Pass geometry (LayerPlan fields, verbatim).
    int64_t rows = 0;     ///< vectors per detection pass
    int64_t vecDim = 0;   ///< extracted vector dimensionality
    int64_t passes = 0;   ///< detection passes per step
    int64_t inFlight = 0; ///< filters in flight per pass

    /**
     * Raw activation bytes one pass streams from its input tensor
     * (conv: one channel plane — patch extraction runs on-chip over
     * the streamed plane; dense / attention: the whole row block).
     */
    int64_t inputBytesPerPass = 0;
    /** Whole input tensor bytes (GlobalBuffer residency decision). */
    int64_t inputTensorBytes = 0;

    /** SignatureRecord bytes held between forward and the gradient
     *  passes, and the plan-time hold (true) vs spill (false) call. */
    uint64_t recordBytes = 0;
    bool holdRecord = true;

    /** Fused conv→conv edge indices into the descriptor vector
     *  (-1 = none): the successor's first hash overlaps the
     *  predecessor's trailing drain. */
    int prevConv = -1;
    int nextConv = -1;
};

/** Export one PassDescriptor per plan layer, in forward order.
 *  Empty when the plan is not plannable. */
std::vector<PassDescriptor> exportPassDescriptors(const StepPlan &plan);

/**
 * Describe a model-zoo layer stack as a step description, so shape
 * stacks compile through RuntimePlanner::compile exactly like a live
 * Network walk (sim::CostModel drives both entry points through one
 * planner). Sequential stacks with chain-consistent geometry (VGG,
 * MobileNet) come out plannable; branching stacks (inception /
 * residual tables, whose listed convs do not chain) and pools other
 * than 2x2/s2 degrade to opaque ops — unplannable, the same verdict a
 * live walk of such a topology would reach.
 */
StepDescBuilder describeShapeStack(const std::vector<LayerShape> &stack,
                                   int64_t batch);

/**
 * Reconstruct the timing-model layer stack of a step description:
 * one LayerShape per reuse op plus one per tracked 2x2 max pool
 * (ReLU / opaque ops carry no cycles). The inverse of
 * describeShapeStack up to layer names; feeds a compiled plan back
 * into the closed-form step model.
 */
std::vector<LayerShape> shapesFromStepDesc(const StepDescBuilder &desc);

/**
 * Build the execution state of a compiled plan: persistent runtimes
 * over the per-layer frontends, planned buffers, and armed prefetch
 * edges. `frontend_for(layer_id)` provisions the layer's detection
 * front-end (MercuryContext::frontendFor); the call also primes each
 * frontend's per-shape knob memo (DetectionFrontend::resolvedPipeFor)
 * so steady-state passes never re-resolve. `capture_records` sizes
 * the backward buffers (skip them for forward-only contexts).
 */
std::unique_ptr<PlanExec> buildPlanExec(
    std::shared_ptr<const StepPlan> plan, int sig_bits,
    bool capture_records,
    const std::function<DetectionFrontend &(uint64_t)> &frontend_for);

} // namespace mercury

#endif // MERCURY_CORE_RUNTIME_PLANNER_HPP
