/**
 * @file
 * AVX2 bodies of the kernel layer. This translation unit is the only
 * one compiled with -mavx2 (see CMakeLists.txt); when the compiler
 * cannot target AVX2 the file compiles to a stub table and avx2Ops()
 * reports unavailability, so the build never emits AVX2 instructions
 * it cannot gate at runtime.
 *
 * Bit-identity with the scalar bodies (the invariant every test in
 * tests/test_kernels.cpp pins down):
 *  - projectRows walks each (row, filter) accumulator in ascending
 *    element order using separate _mm256_mul_ps + _mm256_add_ps —
 *    never FMA, whose single rounding would diverge. The 8 lanes are
 *    8 *independent* filters of the interleaved mirror, so widening
 *    reorders nothing within any accumulator.
 *  - signPack compares with _CMP_LT_OQ against +0.0f: -0.0f < 0.0f
 *    is false, exactly like the scalar `p < 0.0f` (all-zero padding
 *    rows produce -0.0f projections, which must not set bits — a raw
 *    sign-bit movemask would get this wrong).
 *  - the span kernels are elementwise; tails fall back to the scalar
 *    loops, which compute the same expression per element.
 */

#include "core/kernels/kernels.hpp"

#ifdef __AVX2__

#include <cstring>
#include <immintrin.h>

namespace mercury {
namespace kernels {
namespace {

void
projectRowsAvx2(const float *rows, int64_t nrows, int64_t d,
                const float * /*cols*/, const float *inter,
                int inter_stride, int bits, float *out)
{
    const int64_t stride = inter_stride;
    // 4-row x 8-filter register tile: the accumulators live in
    // registers across the whole element loop, and each interleaved
    // matrix line is loaded once per tile instead of once per row.
    int64_t r = 0;
    for (; r + 4 <= nrows; r += 4) {
        const float *v0 = rows + r * d;
        const float *v1 = v0 + d;
        const float *v2 = v1 + d;
        const float *v3 = v2 + d;
        float *o0 = out + r * bits;
        float *o1 = o0 + bits;
        float *o2 = o1 + bits;
        float *o3 = o2 + bits;
        int n = 0;
        for (; n + 8 <= bits; n += 8) {
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            for (int64_t i = 0; i < d; ++i) {
                const __m256 w =
                    _mm256_loadu_ps(inter + i * stride + n);
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(_mm256_set1_ps(v0[i]), w));
                a1 = _mm256_add_ps(
                    a1, _mm256_mul_ps(_mm256_set1_ps(v1[i]), w));
                a2 = _mm256_add_ps(
                    a2, _mm256_mul_ps(_mm256_set1_ps(v2[i]), w));
                a3 = _mm256_add_ps(
                    a3, _mm256_mul_ps(_mm256_set1_ps(v3[i]), w));
            }
            _mm256_storeu_ps(o0 + n, a0);
            _mm256_storeu_ps(o1 + n, a1);
            _mm256_storeu_ps(o2 + n, a2);
            _mm256_storeu_ps(o3 + n, a3);
        }
        for (; n < bits; ++n) {
            float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
            for (int64_t i = 0; i < d; ++i) {
                const float w = inter[i * stride + n];
                s0 += v0[i] * w;
                s1 += v1[i] * w;
                s2 += v2[i] * w;
                s3 += v3[i] * w;
            }
            o0[n] = s0;
            o1[n] = s1;
            o2[n] = s2;
            o3[n] = s3;
        }
    }
    for (; r < nrows; ++r) {
        const float *v = rows + r * d;
        float *o = out + r * bits;
        int n = 0;
        for (; n + 8 <= bits; n += 8) {
            __m256 a = _mm256_setzero_ps();
            for (int64_t i = 0; i < d; ++i) {
                const __m256 w =
                    _mm256_loadu_ps(inter + i * stride + n);
                a = _mm256_add_ps(
                    a, _mm256_mul_ps(_mm256_set1_ps(v[i]), w));
            }
            _mm256_storeu_ps(o + n, a);
        }
        for (; n < bits; ++n) {
            float s = 0.0f;
            for (int64_t i = 0; i < d; ++i)
                s += v[i] * inter[i * stride + n];
            o[n] = s;
        }
    }
}

void
signPackAvx2(const float *proj, int64_t nrows, int bits,
             int64_t words_per_row, uint64_t *out)
{
    const __m256 zero = _mm256_setzero_ps();
    for (int64_t r = 0; r < nrows; ++r) {
        const float *p = proj + r * bits;
        uint64_t *w = out + r * words_per_row;
        std::memset(w, 0, static_cast<size_t>(words_per_row) *
                              sizeof(uint64_t));
        int n = 0;
        // 8 sign bits per compare+movemask; n is a multiple of 8, so
        // an octet never straddles a 64-bit word boundary.
        for (; n + 8 <= bits; n += 8) {
            const __m256 v = _mm256_loadu_ps(p + n);
            const int m = _mm256_movemask_ps(
                _mm256_cmp_ps(v, zero, _CMP_LT_OQ));
            w[n >> 6] |= static_cast<uint64_t>(m) << (n & 63);
        }
        for (; n < bits; ++n) {
            if (p[n] < 0.0f)
                w[n >> 6] |= 1ull << (n & 63);
        }
    }
}

void
copySpanAvx2(float *dst, const float *src, int64_t n)
{
    std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

void
addSpanAvx2(float *dst, const float *src, int64_t n)
{
    int64_t e = 0;
    for (; e + 8 <= n; e += 8) {
        const __m256 s = _mm256_loadu_ps(src + e);
        const __m256 d8 = _mm256_loadu_ps(dst + e);
        _mm256_storeu_ps(dst + e, _mm256_add_ps(d8, s));
    }
    for (; e < n; ++e)
        dst[e] += src[e];
}

void
scaleSpanAvx2(float *dst, float a, const float *src, int64_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    int64_t e = 0;
    for (; e + 8 <= n; e += 8) {
        const __m256 s = _mm256_loadu_ps(src + e);
        _mm256_storeu_ps(dst + e, _mm256_mul_ps(av, s));
    }
    for (; e < n; ++e)
        dst[e] = a * src[e];
}

void
axpyAvx2(float *dst, float a, const float *src, int64_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    int64_t e = 0;
    for (; e + 8 <= n; e += 8) {
        const __m256 s = _mm256_loadu_ps(src + e);
        const __m256 d8 = _mm256_loadu_ps(dst + e);
        _mm256_storeu_ps(dst + e,
                         _mm256_add_ps(d8, _mm256_mul_ps(av, s)));
    }
    for (; e < n; ++e)
        dst[e] += a * src[e];
}

void
extractPatchesAvx2(const float *plane, int64_t in_h, int64_t in_w,
                   int64_t ow, int64_t stride, int64_t pad, int64_t k,
                   int64_t r0, int64_t r1, float *rows)
{
    // Patch extraction is pure data movement (clipped memcpy spans of
    // typically k <= 7 floats), so there is nothing to widen: the
    // AVX2 table only adds a software prefetch of the next position's
    // first source row, hiding the strided plane walk of the fused
    // block path. The copy/zero structure matches the scalar body
    // exactly, so the outputs are identical by construction.
    const int64_t d = k * k;
    for (int64_t r = r0; r < r1; ++r) {
        const int64_t iy0 = (r / ow) * stride - pad;
        const int64_t ix0 = (r % ow) * stride - pad;
        if (r + 1 < r1) {
            const int64_t py = ((r + 1) / ow) * stride - pad;
            const int64_t px = ((r + 1) % ow) * stride - pad;
            if (py >= 0 && py < in_h)
                _mm_prefetch(reinterpret_cast<const char *>(
                                 plane + py * in_w + (px < 0 ? 0 : px)),
                             _MM_HINT_T0);
        }
        int64_t kx0 = ix0 < 0 ? -ix0 : 0;
        int64_t kx1 = in_w - ix0 < k ? in_w - ix0 : k;
        if (kx1 < kx0)
            kx1 = kx0;
        float *dst = rows + r * d;
        for (int64_t ky = 0; ky < k; ++ky, dst += k) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= in_h) {
                std::memset(dst, 0, static_cast<size_t>(k) * sizeof(float));
                continue;
            }
            if (kx0 > 0)
                std::memset(dst, 0,
                            static_cast<size_t>(kx0) * sizeof(float));
            if (kx1 > kx0)
                std::memcpy(dst + kx0, plane + iy * in_w + ix0 + kx0,
                            static_cast<size_t>(kx1 - kx0) * sizeof(float));
            if (kx1 < k)
                std::memset(dst + kx1, 0,
                            static_cast<size_t>(k - kx1) * sizeof(float));
        }
    }
}

const KernelOps kAvx2Ops = {
    "avx2",          // name
    true,            // wantsInterleaved
    projectRowsAvx2, // projectRows
    signPackAvx2,    // signPack
    copySpanAvx2,    // copySpan
    addSpanAvx2,     // addSpan
    scaleSpanAvx2,   // scaleSpan
    axpyAvx2,        // axpy
    extractPatchesAvx2, // extractPatches
};

bool
cpuHasAvx2()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

} // namespace

const KernelOps *
avx2Ops()
{
    static const bool available = cpuHasAvx2();
    return available ? &kAvx2Ops : nullptr;
}

} // namespace kernels
} // namespace mercury

#else // !__AVX2__

namespace mercury {
namespace kernels {

const KernelOps *
avx2Ops()
{
    return nullptr;
}

} // namespace kernels
} // namespace mercury

#endif // __AVX2__
