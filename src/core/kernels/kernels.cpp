/**
 * @file
 * One-time kernel-table dispatch: AVX2 when compiler and CPU both
 * allow it, MERCURY_KERNELS=scalar|avx2 to override, scalar always
 * the fallback.
 */

#include "core/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace mercury {
namespace kernels {
namespace {

/** Test override (pinned table), or null for normal dispatch. */
std::atomic<const KernelOps *> g_forced{nullptr};

const KernelOps *
resolve()
{
    const char *env = std::getenv("MERCURY_KERNELS");
    if (env != nullptr && env[0] != '\0') {
        if (std::strcmp(env, "scalar") == 0)
            return &scalarOps();
        if (std::strcmp(env, "avx2") == 0) {
            if (const KernelOps *t = avx2Ops())
                return t;
            warn("MERCURY_KERNELS=avx2 requested but AVX2 is "
                    "unavailable; using scalar kernels");
            return &scalarOps();
        }
        warn("unknown MERCURY_KERNELS value '", env,
                "' (expected scalar|avx2); using automatic dispatch");
    }
    if (const KernelOps *t = avx2Ops())
        return t;
    return &scalarOps();
}

} // namespace

const KernelOps &
ops()
{
    if (const KernelOps *forced = g_forced.load(std::memory_order_acquire))
        return *forced;
    static const KernelOps *dispatched = resolve();
    return *dispatched;
}

void
forceForTesting(const KernelOps *table)
{
    g_forced.store(table, std::memory_order_release);
}

} // namespace kernels
} // namespace mercury
