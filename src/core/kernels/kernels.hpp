/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the reuse hot paths.
 *
 * Every kernel has an AVX2 body and a scalar fallback that are
 * bit-identical: each output element is produced by the same sequence
 * of IEEE operations in the same order in both bodies. The projection
 * kernel guarantees this by accumulating every (row, filter) sum in
 * ascending element order with separate multiply and add (no FMA —
 * fused rounding would diverge from the scalar path); the span
 * kernels are elementwise, so lane width cannot reorder anything; the
 * sign-pack kernel compares with `_CMP_LT_OQ` against +0.0f, which
 * matches `p < 0.0f` exactly (including -0.0f from all-zero padding
 * rows, which must NOT set the bit).
 *
 * Dispatch happens once, on first use: the AVX2 table is selected
 * when the compiler could build it and the CPU reports AVX2, unless
 * `MERCURY_KERNELS=scalar` (or `=avx2`) overrides the choice. Tests
 * may swap the active table with forceForTesting() to compare both
 * paths in one process.
 *
 * Layout contract of projectRows: `cols` is the column-major
 * projection matrix (filter n contiguous at cols[n*d .. (n+1)*d));
 * `inter` is its bit-interleaved mirror (element i of every filter
 * contiguous at inter[i*inter_stride .. i*inter_stride + bits)).
 * A table sets `wantsInterleaved` when its projection body reads
 * `inter`; callers may then pass inter = nullptr to tables that do
 * not, and skip building the mirror entirely.
 */

#ifndef MERCURY_CORE_KERNELS_KERNELS_HPP
#define MERCURY_CORE_KERNELS_KERNELS_HPP

#include <cstdint>

namespace mercury {
namespace kernels {

/** One dispatchable table of hot-path kernel bodies. */
struct KernelOps
{
    const char *name;      ///< "scalar" or "avx2"
    bool wantsInterleaved; ///< projection reads the interleaved mirror

    /**
     * Project `nrows` row-major d-vectors against the first `bits`
     * random filters, writing a row-major (nrows, bits) block to
     * `out`. Each (row, filter) accumulator sums elements in
     * ascending order with mul+add.
     */
    void (*projectRows)(const float *rows, int64_t nrows, int64_t d,
                        const float *cols, const float *inter,
                        int inter_stride, int bits, float *out);

    /**
     * Pack the sign bits of a row-major (nrows, bits) projection
     * block: bit n of row r is (proj[r*bits + n] < 0.0f), written
     * into `words_per_row` little-endian 64-bit words per row
     * (unused high bits zeroed).
     */
    void (*signPack)(const float *proj, int64_t nrows, int bits,
                     int64_t words_per_row, uint64_t *out);

    /** dst[0..n) = src[0..n) (ranges must not overlap). */
    void (*copySpan)(float *dst, const float *src, int64_t n);

    /** dst[e] += src[e] for e in [0, n) — elementwise, no reorder. */
    void (*addSpan)(float *dst, const float *src, int64_t n);

    /** dst[e] = a * src[e] for e in [0, n). */
    void (*scaleSpan)(float *dst, float a, const float *src, int64_t n);

    /** dst[e] += a * src[e] for e in [0, n) — mul+add, no FMA. */
    void (*axpy)(float *dst, float a, const float *src, int64_t n);

    /**
     * Extract im2col patch rows [r0, r1) of one (in_h, in_w) input
     * plane into a row-major (rows, k*k) tensor at `rows` (indexed by
     * absolute row: row r starts at rows + r*k*k). Row r covers
     * output position (y, x) = (r / ow, r % ow); element ky*k + kx
     * reads plane[y*stride - pad + ky][x*stride - pad + kx], or 0.0f
     * outside the plane. Both bodies are span-clipped copies/zero
     * fills, so bit-identity is structural — there is no arithmetic
     * to reorder. Disjoint row ranges may be filled concurrently
     * (the fused detection blocks extract their own rows in place).
     */
    void (*extractPatches)(const float *plane, int64_t in_h, int64_t in_w,
                           int64_t ow, int64_t stride, int64_t pad,
                           int64_t k, int64_t r0, int64_t r1, float *rows);
};

/** The scalar reference table (always available). */
const KernelOps &scalarOps();

/** The AVX2 table, or nullptr when compiler or CPU lacks AVX2. */
const KernelOps *avx2Ops();

/**
 * The active table: dispatched once on first call — AVX2 when
 * available, overridable with MERCURY_KERNELS=scalar|avx2 (an
 * unsatisfiable avx2 request falls back to scalar with a warning).
 */
const KernelOps &ops();

/**
 * Test hook: pin the active table (nullptr re-arms normal dispatch).
 * Call only from a single thread with no passes in flight.
 */
void forceForTesting(const KernelOps *table);

} // namespace kernels
} // namespace mercury

#endif // MERCURY_CORE_KERNELS_KERNELS_HPP
