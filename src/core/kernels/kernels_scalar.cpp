/**
 * @file
 * Scalar reference bodies of the kernel layer. These are the
 * bit-identity anchors: the AVX2 bodies must reproduce every output
 * of these loops exactly (see kernels.hpp for how). The projection
 * body is the natural per-(row, filter) dot product over the
 * column-major matrix — the same element order RPQEngine::project()
 * walks — so it needs no interleaved mirror.
 */

#include "core/kernels/kernels.hpp"

#include <cstring>

namespace mercury {
namespace kernels {
namespace {

void
projectRowsScalar(const float *rows, int64_t nrows, int64_t d,
                  const float *cols, const float * /*inter*/,
                  int /*inter_stride*/, int bits, float *out)
{
    for (int64_t r = 0; r < nrows; ++r) {
        const float *v = rows + r * d;
        float *acc = out + r * bits;
        for (int n = 0; n < bits; ++n) {
            const float *col = cols + static_cast<int64_t>(n) * d;
            float a = 0.0f;
            for (int64_t i = 0; i < d; ++i)
                a += v[i] * col[i];
            acc[n] = a;
        }
    }
}

void
signPackScalar(const float *proj, int64_t nrows, int bits,
               int64_t words_per_row, uint64_t *out)
{
    for (int64_t r = 0; r < nrows; ++r) {
        const float *p = proj + r * bits;
        uint64_t *w = out + r * words_per_row;
        std::memset(w, 0, static_cast<size_t>(words_per_row) *
                              sizeof(uint64_t));
        for (int n = 0; n < bits; ++n) {
            if (p[n] < 0.0f)
                w[n >> 6] |= 1ull << (n & 63);
        }
    }
}

void
copySpanScalar(float *dst, const float *src, int64_t n)
{
    std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

void
addSpanScalar(float *dst, const float *src, int64_t n)
{
    for (int64_t e = 0; e < n; ++e)
        dst[e] += src[e];
}

void
scaleSpanScalar(float *dst, float a, const float *src, int64_t n)
{
    for (int64_t e = 0; e < n; ++e)
        dst[e] = a * src[e];
}

void
axpyScalar(float *dst, float a, const float *src, int64_t n)
{
    for (int64_t e = 0; e < n; ++e)
        dst[e] += a * src[e];
}

void
extractPatchesScalar(const float *plane, int64_t in_h, int64_t in_w,
                     int64_t ow, int64_t stride, int64_t pad, int64_t k,
                     int64_t r0, int64_t r1, float *rows)
{
    const int64_t d = k * k;
    for (int64_t r = r0; r < r1; ++r) {
        const int64_t iy0 = (r / ow) * stride - pad;
        const int64_t ix0 = (r % ow) * stride - pad;
        // The in-bounds kx window is the same for every kernel row of
        // this position; clip it once.
        int64_t kx0 = ix0 < 0 ? -ix0 : 0;
        int64_t kx1 = in_w - ix0 < k ? in_w - ix0 : k;
        if (kx1 < kx0)
            kx1 = kx0;
        float *dst = rows + r * d;
        for (int64_t ky = 0; ky < k; ++ky, dst += k) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= in_h) {
                std::memset(dst, 0, static_cast<size_t>(k) * sizeof(float));
                continue;
            }
            if (kx0 > 0)
                std::memset(dst, 0,
                            static_cast<size_t>(kx0) * sizeof(float));
            if (kx1 > kx0)
                std::memcpy(dst + kx0, plane + iy * in_w + ix0 + kx0,
                            static_cast<size_t>(kx1 - kx0) * sizeof(float));
            if (kx1 < k)
                std::memset(dst + kx1, 0,
                            static_cast<size_t>(k - kx1) * sizeof(float));
        }
    }
}

const KernelOps kScalarOps = {
    "scalar",          // name
    false,             // wantsInterleaved
    projectRowsScalar, // projectRows
    signPackScalar,    // signPack
    copySpanScalar,    // copySpan
    addSpanScalar,     // addSpan
    scaleSpanScalar,     // scaleSpan
    axpyScalar,          // axpy
    extractPatchesScalar, // extractPatches
};

} // namespace

const KernelOps &
scalarOps()
{
    return kScalarOps;
}

} // namespace kernels
} // namespace mercury
