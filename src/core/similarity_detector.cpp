#include "core/similarity_detector.hpp"

#include <unordered_set>

#include "util/logging.hpp"
#include "util/sampling.hpp"

namespace mercury {

int64_t
DetectionResult::uniqueVectors() const
{
    // Each MAU created a distinct signature entry; MNU vectors were
    // distinct from everything cached but could collide among
    // themselves, so MAU is the detector's unique-vector estimate.
    return hitmap.mix().mau;
}

SimilarityDetector::SimilarityDetector(const RPQEngine &rpq, MCache &cache,
                                       int bits)
    : rpq_(rpq), cache_(cache), bits_(bits)
{
    if (bits <= 0 || bits > rpq.maxBits())
        panic("signature bits ", bits, " outside engine range 1..",
              rpq.maxBits());
}

DetectionResult
SimilarityDetector::detect(const Tensor &rows) const
{
    if (rows.rank() != 2 || rows.dim(1) != rpq_.vectorDim())
        panic("detect expects (n, ", rpq_.vectorDim(), ") got ",
              rows.shapeStr());
    cache_.clear();
    const int64_t n = rows.dim(0);
    DetectionResult res;
    res.hitmap.reset(n);
    for (int64_t i = 0; i < n; ++i) {
        Signature sig = rpq_.signatureOfRow(rows, i, bits_);
        const McacheResult r = cache_.lookupOrInsert(sig);
        res.hitmap.record(i, r);
        res.table.append(std::move(sig), r.entryId);
    }
    return res;
}

HitMix
SimilarityDetector::detectSampled(const Tensor &rows,
                                  int64_t max_sample) const
{
    return sampledDetection(rows, max_sample, [this](const Tensor &r) {
        return detect(r).mix();
    });
}

} // namespace mercury
