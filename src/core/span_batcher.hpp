/**
 * @file
 * Span batching for the HIT-copy and scatter hot paths: coalesce
 * per-row work into contiguous ranges so the copy/scatter kernels run
 * as few large memcpy-class moves instead of per-row (or per-element)
 * operations.
 *
 * ## Forward-run coalescing (HIT copies)
 *
 * forEachConsecutiveSpan partitions a (row, owner) forwarding list
 * into maximal runs where BOTH sequences advance by exactly one —
 * i.e. rows r..r+L-1 forward from owners o..o+L-1. For such a run the
 * destination rows and the source rows are each contiguous in the
 * output tensor, so the whole run is one copySpan of L*row_width
 * floats. The copy is always memcpy-safe: owners are computed rows
 * and spans' rows are HIT rows, the two index sets are disjoint, and
 * every owner precedes its row — so a consecutive run satisfies
 * o + L <= r and the ranges cannot overlap.
 *
 * ## Scatter-window coalescing (dX scatter)
 *
 * kxSpan clips one kernel row against the input width: at output
 * column x, the in-bounds kernel columns form one contiguous window
 * [kx0, kx1) whose source (the grad column row) and destination (the
 * input-gradient row) are both contiguous — one addSpan per (output
 * position, kernel row) instead of a bounds check per element.
 */

#ifndef MERCURY_CORE_SPAN_BATCHER_HPP
#define MERCURY_CORE_SPAN_BATCHER_HPP

#include <algorithm>
#include <cstdint>

namespace mercury {

/**
 * Invoke fn(i0, i1) for each maximal run of [0, n) where rows and
 * owners both step by one. Every index lands in exactly one run;
 * singleton runs are delivered too (callers fall back to per-row
 * copies for those).
 */
template <typename Fn>
inline void
forEachConsecutiveSpan(const int64_t *rows, const int64_t *owners,
                       int64_t n, Fn &&fn)
{
    int64_t i0 = 0;
    while (i0 < n) {
        int64_t i1 = i0 + 1;
        while (i1 < n && rows[i1] == rows[i1 - 1] + 1 &&
               owners[i1] == owners[i1 - 1] + 1)
            ++i1;
        fn(i0, i1);
        i0 = i1;
    }
}

/** Contiguous in-bounds kernel-column window of one scatter row. */
struct KxSpan
{
    int64_t kx0; ///< first in-bounds kernel column
    int64_t kx1; ///< one past the last in-bounds kernel column
};

/**
 * The valid kernel columns at output column x: kx such that
 * 0 <= x*stride - pad + kx < in_w. Empty window when kx0 >= kx1.
 */
inline KxSpan
kxSpan(int64_t x, int64_t stride, int64_t pad, int64_t k, int64_t in_w)
{
    const int64_t base = x * stride - pad;
    return {std::max<int64_t>(0, -base),
            std::min<int64_t>(k, in_w - base)};
}

} // namespace mercury

#endif // MERCURY_CORE_SPAN_BATCHER_HPP
