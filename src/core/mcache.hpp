/**
 * @file
 * MCACHE: the signature-indexed result cache at the heart of MERCURY
 * (§III-B3, §III-C1, §V).
 *
 * Differences from an ordinary cache, per the paper:
 *  - the tag (signature) becomes valid before the data (computed dot
 *    products), so every line has a Valid-Tag bit and per-version
 *    Valid-Data bits that are set independently;
 *  - there is no replacement: inserting into a full set fails (the
 *    requesting vector becomes Miss-No-Update);
 *  - the data portion is multi-version (one slot per in-flight
 *    filter) so the asynchronous design can keep results of several
 *    filters alive at once;
 *  - a bitline clears every Valid-Data bit in one operation when the
 *    PE array moves to the next filter (synchronous design);
 *  - entries are also addressable by a dense id so later accesses
 *    skip tag comparison (§V), and per-set insert queues serialize
 *    simultaneous inserts.
 */

#ifndef MERCURY_CORE_MCACHE_HPP
#define MERCURY_CORE_MCACHE_HPP

#include <cstdint>
#include <vector>

#include "core/signature.hpp"
#include "util/prefetch.hpp"
#include "util/stats.hpp"

namespace mercury {

/** Outcome of presenting a signature to MCACHE (Fig. 9). */
enum class McacheOutcome
{
    Hit, ///< signature already present: reuse
    Mau, ///< miss-and-update: tag inserted, data to follow
    Mnu, ///< miss-no-update: set full, nothing inserted
};

/** Printable name of an outcome. */
const char *mcacheOutcomeName(McacheOutcome outcome);

/** Result of an MCACHE lookup: outcome plus the entry id (if any). */
struct McacheResult
{
    McacheOutcome outcome = McacheOutcome::Mnu;
    int64_t entryId = -1; ///< dense id (set * ways + way), -1 for MNU
};

/**
 * Capacity gate consulted before a tag insert claims a line for a
 * tenant (serving layer: per-tenant quota over a shared cache). A
 * rejected reservation turns the insert into MNU. Implementations
 * must pair every successful tryReserve with exactly one release when
 * the line is evicted or cleared.
 */
class McacheQuotaGate
{
  public:
    virtual ~McacheQuotaGate() = default;
    /** Reserve one line for `tenant`; false rejects the insert. */
    virtual bool tryReserve(int tenant) = 0;
    /** Return one line previously reserved for `tenant`. */
    virtual void release(int tenant) = 0;
};

/** The MERCURY result cache. */
class MCache
{
  public:
    /**
     * @param sets          number of sets
     * @param ways          associativity
     * @param data_versions data slots per line (in-flight filters M)
     */
    MCache(int sets, int ways, int data_versions);

    int sets() const { return sets_; }
    int ways() const { return ways_; }
    int dataVersions() const { return versions_; }
    int64_t entries() const { return static_cast<int64_t>(sets_) * ways_; }

    /**
     * Present a signature: HIT if present, otherwise insert (MAU) or
     * report a full set (MNU). Implements the Fig. 9 flow.
     */
    McacheResult lookupOrInsert(const Signature &sig);

    /**
     * lookupOrInsert with an externally computed set index. This is
     * the sharded entry point (pipeline/sharded_mcache.hpp): a shard
     * owns a contiguous range of the global sets and addresses its
     * local sets directly, so the signature hash is taken once at the
     * front of the pipeline instead of once per probe.
     */
    McacheResult lookupOrInsertInSet(int set, const Signature &sig);

    /** True if the entry's data for `version` is valid. */
    bool dataValid(int64_t entry_id, int version) const;

    /** Read a computed result; panics if the version is invalid. */
    float readData(int64_t entry_id, int version) const;

    /** Write a computed result and set its VD bit. */
    void writeData(int64_t entry_id, int version, float value);

    /**
     * Clear every VD bit (the bitline): used by the synchronous
     * design when PE sets move to the next filter. Tags survive.
     */
    void invalidateAllData();

    /** Clear tags and data: a new channel's vectors arrived. */
    void clear();

    /** Set index a signature maps to (exposed for tests). */
    int setIndexOf(const Signature &sig) const;

    /**
     * Software-prefetch the set's lines ahead of a probe. A pure
     * host-side hint: no stats, no state, nothing the timing model
     * sees. The streaming probe loop uses it to pull row i+1's set
     * into cache while row i's tag compare runs.
     */
    void prefetchSet(int set) const
    {
        const Line *l = &lines_[static_cast<size_t>(set) * ways_];
        for (int w = 0; w < ways_; ++w)
            prefetchRead(l + w);
    }

    /** Occupancy (valid tags) of one set. */
    int setOccupancy(int set) const;

    /**
     * Drain-cost model of the per-set insert queues (§V): given the
     * inserts recorded since the last clear, the serialization cost
     * is the largest per-set insert count.
     */
    uint64_t maxInsertBacklog() const;

    /**
     * Reset the insert-queue model without touching tags. Persistent
     * passes (serving layer) call this at each pass boundary, where
     * the non-persistent path would have called clear(), so the §V
     * drain cost stays a per-pass quantity.
     */
    void resetInsertBacklog();

    // ---- Lifecycle metadata (serving layer) -------------------------
    //
    // Every line carries a last-touch epoch (stamped on insert,
    // refreshed on HIT), an owning tenant (stamped on insert), and a
    // pin count. Eviction sweeps remove valid lines by epoch age or by
    // tenant but never remove a pinned line, so a client holding a
    // HIT's entry id across an eviction sweep pins it first (see
    // docs/ARCHITECTURE.md, "Serving layer").

    /** Epoch stamped on inserts and refreshed on HITs from now on. */
    void setEpoch(uint64_t epoch) { epoch_ = epoch; }
    uint64_t epoch() const { return epoch_; }

    /** Tenant stamped on inserts from now on (-1 = unowned). */
    void setInsertTenant(int tenant) { insertTenant_ = tenant; }
    int insertTenant() const { return insertTenant_; }

    /** Gate consulted before each insert; nullptr admits everything. */
    void setQuotaGate(McacheQuotaGate *gate) { quotaGate_ = gate; }

    /** Last-touch epoch of a line (insert-stamped, HIT-refreshed). */
    uint64_t entryEpoch(int64_t entry_id) const;

    /** Owning tenant of a line (-1 when inserted unowned). */
    int entryTenant(int64_t entry_id) const;

    /** True if the line holds a valid tag. */
    bool tagValid(int64_t entry_id) const;

    /** Tag of a valid line; panics on an invalid line. */
    const Signature &tagOf(int64_t entry_id) const;

    /** Valid lines currently stamped with `tenant`. */
    int64_t tenantEntries(int tenant) const;

    /** Pin a valid line against eviction / unpin it again. */
    void pin(int64_t entry_id);
    void unpin(int64_t entry_id);
    uint32_t pinCount(int64_t entry_id) const;

    /**
     * Evict valid, unpinned lines last touched before `min_epoch`
     * (epoch-tag aging: oldest lines go first as the floor rises).
     * Returns the number of lines evicted; pinned survivors are
     * counted in the "evictionPinSkips" stat.
     */
    int64_t evictOlderThan(uint64_t min_epoch);

    /** Evict every valid, unpinned line stamped with `tenant`. */
    int64_t evictTenant(int tenant);

    /**
     * Snapshot restore: install a tag plus lifecycle metadata into an
     * empty line (panics if the line already holds a valid tag — the
     * restore target must be cleared first). Data versions start
     * invalid; the quota gate is bypassed, callers recount
     * reservations afterwards (ShardedMCache::recountTenantReservations).
     */
    void restoreLine(int64_t entry_id, const Signature &sig,
                     uint64_t epoch, int tenant);

    /** Lifetime statistics: hits, mau, mnu, inserts, dataReads, ... */
    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    struct Line
    {
        Signature tag;
        bool validTag = false;
        std::vector<float> data;
        std::vector<bool> validData;
        uint64_t epoch = 0;  ///< last-touch epoch (insert / HIT)
        int tenant = -1;     ///< owning tenant (-1 = unowned)
        uint32_t pins = 0;   ///< eviction pins (in-flight HITs)
    };

    int sets_;
    int ways_;
    int versions_;
    std::vector<Line> lines_;
    std::vector<uint64_t> insertBacklog_;
    uint64_t epoch_ = 0;
    int insertTenant_ = -1;
    McacheQuotaGate *quotaGate_ = nullptr;
    /// Mutable: read paths (e.g. readData) count accesses too.
    mutable StatGroup stats_;

    Line &line(int64_t entry_id);
    const Line &line(int64_t entry_id) const;
    void evictLine(Line &l);
};

} // namespace mercury

#endif // MERCURY_CORE_MCACHE_HPP
