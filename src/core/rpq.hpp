/**
 * @file
 * Random Projection with Quantization engine (§II-A, §III-B).
 *
 * The engine owns a random projection matrix R of shape d x N whose
 * columns, reshaped to the kernel geometry, act as "random filters".
 * A signature bit is the sign of the dot product between an input
 * vector and one random filter, so signature generation is exactly a
 * convolution pass per bit and reuses the PE array (§III-B1). The
 * engine supports incremental extension: growing the signature
 * length reuses the existing columns and only adds new ones, which
 * is what the adaptive controller needs (§III-D).
 */

#ifndef MERCURY_CORE_RPQ_HPP
#define MERCURY_CORE_RPQ_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/signature.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace mercury {

/** RPQ signature generator for vectors of a fixed dimension. */
class RPQEngine
{
  public:
    /**
     * @param vector_dim dimensionality d of input vectors
     * @param max_bits   maximum signature length to provision
     * @param seed       RNG seed for the projection matrix
     */
    RPQEngine(int64_t vector_dim, int max_bits, uint64_t seed);

    int64_t vectorDim() const { return vectorDim_; }
    int maxBits() const { return maxBits_; }

    /** Projection of a vector onto random filter n (before the sign). */
    float project(const float *vec, int n) const;

    /** Signature of one vector with the given number of bits. */
    Signature signatureOf(const float *vec, int bits) const;

    /** Signature of one vector given as a tensor row. */
    Signature signatureOfRow(const Tensor &rows, int64_t row,
                             int bits) const;

    /**
     * Signatures for every row of a (num_vectors, d) matrix. This is
     * the batch form the accelerator executes as `bits` convolution
     * passes (one per random filter).
     */
    std::vector<Signature> signaturesOf(const Tensor &rows,
                                        int bits) const;

    /**
     * Blocked matrix-matrix projection (the pipeline's batch front
     * end, Fig. 7/8): project rows [row0, row1) of a (n, d) matrix
     * against the first `bits` random filters at once, writing a
     * row-major (row1 - row0, bits) block to `out`. Runs through the
     * dispatched kernel table (src/core/kernels/): the AVX2 body
     * vectorizes over independent per-filter accumulators of the
     * bit-interleaved matrix mirror, while each per-(row, filter)
     * sum accumulates in the same element order as project() —
     * results are bit-identical to the scalar path.
     */
    void projectBlock(const Tensor &rows, int64_t row0, int64_t row1,
                      int bits, float *out) const;

    /**
     * Blocked signature generation: signatureOf() for rows
     * [row0, row1), written to out[0 .. row1-row0). Bit-identical to
     * calling signatureOfRow per row, but runs through projectBlock
     * in cache-sized row tiles.
     */
    void signatureBlock(const Tensor &rows, int64_t row0, int64_t row1,
                        int bits, Signature *out) const;

    /**
     * Random filter n reshaped as a (k, k) tensor, k*k == d. This is
     * the weight layout streamed through the PE array when signature
     * generation runs as a convolution (§III-B1, Fig. 7).
     */
    Tensor randomFilter2D(int n, int64_t k) const;

    /**
     * Convolution-formulation cross-check: compute the n-th signature
     * bit of every kernel-sized patch of `image` by convolving with
     * randomFilter2D(n) and sign-quantizing. Tests verify this equals
     * the row-wise signatureOf on im2col patches.
     */
    std::vector<bool> bitViaConvolution(const Tensor &image, int64_t k,
                                        int n) const;

  private:
    int64_t vectorDim_;
    int maxBits_;
    // Column-major random matrix: filter n occupies
    // [n * vectorDim_, (n + 1) * vectorDim_).
    std::vector<float> matrix_;
    // Bit-interleaved mirror for the blocked projection: element i of
    // every filter is contiguous at [i * maxBits_, (i + 1) * maxBits_).
    // Built lazily on the first projectBlock call under a kernel
    // table that wants it (the scalar table never pays the 2x matrix
    // memory); call_once keeps concurrent block projections safe.
    mutable std::vector<float> interleaved_;
    mutable std::once_flag interleavedOnce_;

    const float *interleaved() const;
};

} // namespace mercury

#endif // MERCURY_CORE_RPQ_HPP
