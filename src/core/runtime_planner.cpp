#include "core/runtime_planner.hpp"

#include <algorithm>
#include <string>

#include "core/conv_reuse_engine.hpp"
#include "util/logging.hpp"

namespace mercury {

namespace {

/** FNV-1a style accumulation; stable across processes. */
uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
}

uint64_t
mixOp(uint64_t h, const LayerStepDesc &op)
{
    h = mix(h, static_cast<uint64_t>(op.kind));
    h = mix(h, op.layerId);
    switch (op.kind) {
    case StepOpKind::Conv:
        h = mix(h, static_cast<uint64_t>(op.conv.inChannels));
        h = mix(h, static_cast<uint64_t>(op.conv.outChannels));
        h = mix(h, static_cast<uint64_t>(op.conv.kernelH));
        h = mix(h, static_cast<uint64_t>(op.conv.kernelW));
        h = mix(h, static_cast<uint64_t>(op.conv.stride));
        h = mix(h, static_cast<uint64_t>(op.conv.pad));
        h = mix(h, static_cast<uint64_t>(op.conv.groups));
        h = mix(h, static_cast<uint64_t>(op.inH));
        h = mix(h, static_cast<uint64_t>(op.inW));
        break;
    case StepOpKind::Dense:
        h = mix(h, static_cast<uint64_t>(op.inFeatures));
        h = mix(h, static_cast<uint64_t>(op.outFeatures));
        break;
    case StepOpKind::Attention:
        h = mix(h, static_cast<uint64_t>(op.seqLen));
        h = mix(h, static_cast<uint64_t>(op.embedDim));
        break;
    default:
        break;
    }
    return h;
}

/** Records above this predicted size are planned as spilled to the
 *  global buffer between passes (the timing model charges the
 *  traffic); smaller ones are held. Functional execution always holds
 *  — host memory is the spill target. */
constexpr uint64_t kHoldRecordBytes = 8ull << 20;

} // namespace

StepDescBuilder::StepDescBuilder(const std::vector<int64_t> &input_shape)
{
    if (!input_shape.empty())
        batch_ = input_shape[0];
    if (input_shape.size() == 4) {
        valid4d_ = true;
        c_ = input_shape[1];
        h_ = input_shape[2];
        w_ = input_shape[3];
    }
}

void
StepDescBuilder::conv(uint64_t layer_id, const ConvSpec &spec)
{
    LayerStepDesc d;
    d.kind = StepOpKind::Conv;
    d.layerId = layer_id;
    d.conv = spec;
    if (!valid4d_ || c_ != spec.inChannels) {
        // The walk lost (or never had) the activation shape before
        // this conv — its pass geometry cannot be resolved ahead of
        // time, so the whole step runs unplanned.
        plannable_ = false;
        ops_.push_back(d);
        return;
    }
    d.inH = h_;
    d.inW = w_;
    ops_.push_back(d);
    c_ = spec.outChannels;
    h_ = spec.outH(d.inH);
    w_ = spec.outW(d.inW);
}

void
StepDescBuilder::dense(uint64_t layer_id, int64_t in_features,
                       int64_t out_features)
{
    LayerStepDesc d;
    d.kind = StepOpKind::Dense;
    d.layerId = layer_id;
    d.inFeatures = in_features;
    d.outFeatures = out_features;
    ops_.push_back(d);
    valid4d_ = false; // dense output is (N, M)
}

void
StepDescBuilder::attention(uint64_t layer_id, int64_t seq_len,
                           int64_t embed_dim)
{
    LayerStepDesc d;
    d.kind = StepOpKind::Attention;
    d.layerId = layer_id;
    d.seqLen = seq_len;
    d.embedDim = embed_dim;
    ops_.push_back(d);
    valid4d_ = false;
}

void
StepDescBuilder::relu()
{
    LayerStepDesc d;
    d.kind = StepOpKind::Relu;
    ops_.push_back(d); // channelwise: shape unchanged
}

void
StepDescBuilder::maxPool2x2()
{
    LayerStepDesc d;
    d.kind = StepOpKind::MaxPool2x2;
    ops_.push_back(d);
    if (valid4d_) {
        h_ /= 2;
        w_ /= 2;
    }
}

void
StepDescBuilder::opaque()
{
    LayerStepDesc d;
    d.kind = StepOpKind::Opaque;
    ops_.push_back(d);
    valid4d_ = false;
}

const LayerPlan *
StepPlan::layerPlan(uint64_t layer_id) const
{
    for (const LayerPlan &lp : layers)
        if (lp.desc.layerId == layer_id)
            return &lp;
    return nullptr;
}

uint64_t
RuntimePlanner::planKey(const StepDescBuilder &desc,
                        const PlanKeyConfig &cfg)
{
    uint64_t h = 0xCBF29CE484222325ull;
    h = mix(h, static_cast<uint64_t>(desc.batch()));
    h = mix(h, desc.plannable() ? 1 : 0);
    for (const LayerStepDesc &op : desc.ops())
        h = mixOp(h, op);
    h = mix(h, static_cast<uint64_t>(cfg.sigBits));
    h = mix(h, static_cast<uint64_t>(cfg.sets));
    h = mix(h, static_cast<uint64_t>(cfg.ways));
    h = mix(h, static_cast<uint64_t>(cfg.dataVersions));
    h = mix(h, static_cast<uint64_t>(cfg.pipe.blockRows));
    h = mix(h, static_cast<uint64_t>(cfg.pipe.shards));
    h = mix(h, static_cast<uint64_t>(cfg.pipe.threads));
    // Off/On keep their historic 0/1 key bits; Auto keys distinctly
    // (its resolution depends on row counts already mixed in above).
    h = mix(h, static_cast<uint64_t>(cfg.pipe.overlap));
    h = mix(h, cfg.pipe.persistent ? 1 : 0);
    h = mix(h, cfg.backwardReuse ? 1 : 0);
    h = mix(h, cfg.weightGradReuse ? 1 : 0);
    return h;
}

std::shared_ptr<const StepPlan>
RuntimePlanner::compile(const StepDescBuilder &desc,
                        const PlanKeyConfig &cfg)
{
    auto plan = std::make_shared<StepPlan>();
    plan->key = planKey(desc, cfg);
    plan->batch = desc.batch();
    plan->plannable = desc.plannable() && desc.batch() > 0;
    if (!plan->plannable)
        return plan;

    const std::vector<LayerStepDesc> &ops = desc.ops();
    // Bytes one recorded pass stores per row: packed signature words,
    // entry id (int32), outcome byte — mirrors SignatureRecord::Pass.
    const uint64_t sig_words =
        static_cast<uint64_t>((cfg.sigBits + 63) / 64);
    const uint64_t record_bytes_per_row = sig_words * 8 + 4 + 1;
    const bool captures = cfg.backwardReuse || cfg.weightGradReuse;

    std::vector<int> op_to_layer(ops.size(), -1);
    for (size_t i = 0; i < ops.size(); ++i) {
        const LayerStepDesc &op = ops[i];
        LayerPlan lp;
        lp.desc = op;
        switch (op.kind) {
        case StepOpKind::Conv: {
            const ConvSpec &s = op.conv;
            lp.outH = s.outH(op.inH);
            lp.outW = s.outW(op.inW);
            lp.rows = lp.outH * lp.outW;
            lp.vecDim = s.kernelH * s.kernelW;
            lp.passes =
                plan->batch * s.groups * (s.inChannels / s.groups);
            lp.inFlight = s.outChannels / s.groups;
            lp.backwardSlots = std::max<int64_t>(
                1, std::min<int64_t>(cfg.dataVersions, lp.inFlight));
            // Planned buffer high-water: the forward double buffer,
            // the dX grad columns, and the dW patch buffer + group
            // sums — whichever pass needs the most at once.
            const uint64_t rv = static_cast<uint64_t>(lp.rows) *
                                static_cast<uint64_t>(lp.vecDim);
            const uint64_t fwd = 2 * rv;
            const uint64_t dx =
                captures
                    ? static_cast<uint64_t>(lp.backwardSlots) * rv
                    : 0;
            const uint64_t dw =
                captures ? rv + static_cast<uint64_t>(lp.backwardSlots) *
                                    static_cast<uint64_t>(lp.rows)
                         : 0;
            lp.scratchFloats = std::max(fwd, std::max(dx, dw));
            break;
        }
        case StepOpKind::Dense:
            lp.rows = plan->batch;
            lp.vecDim = op.inFeatures;
            lp.passes = 1;
            lp.inFlight = op.outFeatures;
            lp.backwardSlots = 1;
            lp.scratchFloats = 0; // row passes forward in place
            break;
        case StepOpKind::Attention:
            lp.rows = op.seqLen;
            lp.vecDim = op.embedDim;
            lp.passes = plan->batch; // one pass per sample
            lp.inFlight = 1;
            lp.backwardSlots = 1;
            lp.scratchFloats = 0;
            break;
        default:
            continue; // channelwise / opaque ops carry no plan
        }
        // Knob resolution happens here, once per layer shape — the
        // per-pass tunedPipelineFor churn the unplanned path pays is
        // the satellite this counter makes assertable.
        lp.pipe = cfg.pipe.resolvedFor(lp.rows);
        ++plan->knobResolutions;
        lp.recordBytes = captures
                             ? static_cast<uint64_t>(lp.passes) *
                                   static_cast<uint64_t>(lp.rows) *
                                   record_bytes_per_row
                             : 0;
        lp.holdRecord = lp.recordBytes <= kHoldRecordBytes;
        op_to_layer[i] = static_cast<int>(plan->layers.size());
        plan->layers.push_back(std::move(lp));
    }

    // Dependency edges: a conv whose output reaches the next conv
    // through channelwise transforms only (ReLU / 2x2 max pool) hands
    // its successor's first-channel hash off before its own trailing
    // filter ranges drain. Any other op in between is a real barrier:
    // either a data dependence the plan cannot see through (opaque)
    // or a reuse layer with its own detection pass whose MCACHE
    // probes must stay ordered after this layer's (the
    // owner-before-hit contract is per cache, and layer caches are
    // provisioned independently — but the probe of the successor
    // still happens inside its own forward, so only the *hash* moves
    // early; see ARCHITECTURE.md "Plan compilation").
    int last_conv_op = -1;
    std::vector<StepOpKind> pending;
    for (size_t i = 0; i < ops.size(); ++i) {
        const StepOpKind kind = ops[i].kind;
        if (kind == StepOpKind::Relu || kind == StepOpKind::MaxPool2x2) {
            pending.push_back(kind);
            continue;
        }
        if (kind != StepOpKind::Conv) {
            last_conv_op = -1;
            pending.clear();
            continue;
        }
        if (last_conv_op >= 0) {
            const int pred = op_to_layer[static_cast<size_t>(last_conv_op)];
            const int succ = op_to_layer[i];
            if (pred >= 0 && succ >= 0) {
                plan->layers[static_cast<size_t>(pred)].nextConv = succ;
                plan->layers[static_cast<size_t>(pred)].edgeTransforms =
                    pending;
                plan->layers[static_cast<size_t>(succ)].prevConv = pred;
                ++plan->fusedEdges;
            }
        }
        last_conv_op = static_cast<int>(i);
        pending.clear();
    }
    if (!plan->layers.empty())
        plan->stepBarriers =
            static_cast<int>(plan->layers.size()) - 1 - plan->fusedEdges;
    return plan;
}

std::vector<PassDescriptor>
exportPassDescriptors(const StepPlan &plan)
{
    std::vector<PassDescriptor> out;
    if (!plan.plannable)
        return out;
    out.reserve(plan.layers.size());
    for (const LayerPlan &lp : plan.layers) {
        PassDescriptor d;
        d.layerId = lp.desc.layerId;
        d.kind = lp.desc.kind;
        d.rows = lp.rows;
        d.vecDim = lp.vecDim;
        d.passes = lp.passes;
        d.inFlight = lp.inFlight;
        switch (lp.desc.kind) {
        case StepOpKind::Conv:
            // One channel plane per pass — patch extraction runs
            // on-chip over the streamed plane, so the raw activation
            // bytes (not the k*k-redundant patch bytes) hit the
            // hierarchy.
            d.inputBytesPerPass = lp.desc.inH * lp.desc.inW * 4;
            d.inputTensorBytes = plan.batch * lp.desc.conv.inChannels *
                                 lp.desc.inH * lp.desc.inW * 4;
            break;
        case StepOpKind::Attention:
            d.inputBytesPerPass = lp.rows * lp.vecDim * 4;
            d.inputTensorBytes = plan.batch * d.inputBytesPerPass;
            break;
        default: // Dense: the whole minibatch is one row pass
            d.inputBytesPerPass = lp.rows * lp.vecDim * 4;
            d.inputTensorBytes = d.inputBytesPerPass;
            break;
        }
        d.recordBytes = lp.recordBytes;
        d.holdRecord = lp.holdRecord;
        d.prevConv = lp.prevConv;
        d.nextConv = lp.nextConv;
        out.push_back(d);
    }
    return out;
}

StepDescBuilder
describeShapeStack(const std::vector<LayerShape> &stack, int64_t batch)
{
    std::vector<int64_t> input_shape{batch};
    const bool leads4d =
        !stack.empty() && (stack[0].type == LayerType::Conv ||
                           stack[0].type == LayerType::Pool);
    if (leads4d)
        input_shape = {batch, stack[0].inChannels, stack[0].inH,
                       stack[0].inW};
    StepDescBuilder b(input_shape);
    // Parallel activation track mirroring the builder's: a layer whose
    // recorded input disagrees with the track is a branch point the
    // sequential walk cannot follow — degrade to opaque, the same
    // verdict a live walk of such a topology would reach.
    bool tracked = leads4d;
    int64_t c = tracked ? stack[0].inChannels : 0;
    int64_t h = tracked ? stack[0].inH : 0;
    int64_t w = tracked ? stack[0].inW : 0;
    for (size_t i = 0; i < stack.size(); ++i) {
        const LayerShape &s = stack[i];
        const uint64_t id = static_cast<uint64_t>(i);
        switch (s.type) {
        case LayerType::Conv: {
            if (!tracked || c != s.inChannels || h != s.inH ||
                w != s.inW) {
                b.opaque();
                tracked = false;
            }
            ConvSpec spec;
            spec.inChannels = s.inChannels;
            spec.outChannels = s.outChannels;
            spec.kernelH = s.kernel;
            spec.kernelW = s.kernel;
            spec.stride = s.stride;
            spec.pad = s.pad;
            spec.groups = s.groups;
            b.conv(id, spec);
            if (tracked) {
                c = s.outChannels;
                h = s.outH();
                w = s.outW();
            }
            break;
        }
        case LayerType::Pool:
            // Only the 2x2/s2 pool is a tracked channelwise op of the
            // step description; other pool geometry drops tracking
            // (floor halving matches outH() for 2x2/s2, odd or even).
            if (tracked && s.kernel == 2 && s.stride == 2 &&
                c == s.inChannels && h == s.inH && w == s.inW) {
                b.maxPool2x2();
                h /= 2;
                w /= 2;
            } else {
                b.opaque();
                tracked = false;
            }
            break;
        case LayerType::FullyConnected:
            b.dense(id, s.inFeatures, s.outFeatures);
            tracked = false;
            break;
        case LayerType::Attention:
            b.attention(id, s.seqLen, s.embedDim);
            tracked = false;
            break;
        }
    }
    return b;
}

std::vector<LayerShape>
shapesFromStepDesc(const StepDescBuilder &desc)
{
    std::vector<LayerShape> out;
    // Activation track for pool reconstruction: valid after any conv
    // with resolved dims, kept by ReLU, dropped by everything else.
    bool tracked = false;
    int64_t c = 0, h = 0, w = 0;
    for (const LayerStepDesc &op : desc.ops()) {
        const std::string name = "op" + std::to_string(out.size());
        switch (op.kind) {
        case StepOpKind::Conv: {
            const ConvSpec &s = op.conv;
            out.push_back(LayerShape::conv(name, s.inChannels,
                                           s.outChannels, op.inH, op.inW,
                                           s.kernelH, s.stride, s.pad,
                                           s.groups));
            tracked = op.inH > 0;
            c = s.outChannels;
            h = s.outH(op.inH);
            w = s.outW(op.inW);
            break;
        }
        case StepOpKind::Dense:
            out.push_back(
                LayerShape::fc(name, op.inFeatures, op.outFeatures));
            tracked = false;
            break;
        case StepOpKind::Attention:
            out.push_back(
                LayerShape::attention(name, op.seqLen, op.embedDim));
            tracked = false;
            break;
        case StepOpKind::MaxPool2x2:
            if (tracked) {
                out.push_back(LayerShape::pool(name, c, h, w, 2, 2));
                h /= 2;
                w /= 2;
            }
            break;
        case StepOpKind::Relu:
            break; // channelwise, no cycles of its own
        default:
            tracked = false;
            break;
        }
    }
    return out;
}

std::shared_ptr<const StepPlan>
PlanCache::find(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find(key);
    return it == plans_.end() ? nullptr : it->second;
}

void
PlanCache::insert(std::shared_ptr<const StepPlan> plan)
{
    if (!plan)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    plans_[plan->key] = std::move(plan);
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plans_.clear();
}

int64_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(plans_.size());
}

ConvPlanSlot *
PlanExec::convSlot(uint64_t layer_id)
{
    auto it = conv.find(layer_id);
    return it == conv.end() ? nullptr : it->second.get();
}

RowPlanSlot *
PlanExec::rowSlot(uint64_t layer_id)
{
    auto it = row.find(layer_id);
    return it == row.end() ? nullptr : it->second.get();
}

namespace {

/**
 * Producing side of a fused conv→conv edge: stage the predecessor's
 * (image 0, channel 0) output plane, push it through the edge's
 * channelwise transforms (bit-identical to the interposed layers —
 * both are channel-local), extract the successor's first channel
 * pass, and start hashing it on the pool. Runs on the driving thread
 * from the predecessor's first drained chain; only the hash tasks go
 * wide, and hashing touches no MCACHE state (DetectionHashJob
 * contract), so the predecessor's remaining filter ranges keep
 * draining against their cache concurrently.
 */
void
fireConvPrefetch(const Tensor &out, const LayerPlan &pred,
                 const LayerPlan &succ, ConvPlanSlot &succ_slot,
                 DetectionFrontend &succ_fe, int bits)
{
    // An unconsumed job from an aborted step may still have hash
    // tasks reading the staging tensors overwritten below; drop it
    // first (the destructor joins its tasks).
    succ_slot.prefetched.reset();

    // Channel 0 of image 0 is the leading outH*outW block of the
    // (N, C, H, W) output.
    const int64_t plane = pred.outH * pred.outW;
    std::copy(out.data(), out.data() + plane, succ_slot.edgeSlice.data());

    const Tensor *cur = &succ_slot.edgeSlice;
    for (StepOpKind t : pred.edgeTransforms) {
        if (t == StepOpKind::Relu) {
            succ_slot.edgePlane = reluForward(*cur);
        } else {
            std::vector<int32_t> argmax;
            succ_slot.edgePlane = maxPool2x2Forward(*cur, argmax);
        }
        cur = &succ_slot.edgePlane;
    }
    if (cur->dim(2) != succ.desc.inH || cur->dim(3) != succ.desc.inW)
        return; // edge geometry drifted; the plain path takes over

    // Fused extraction: each hash block extracts its own row range
    // from the staged plane right before hashing it (single touch,
    // on the pool). The plane and row buffer are slot members that
    // outlive the job; the spec lives in the immutable StepPlan.
    const Tensor *src = cur;
    const ConvSpec *cspec = &succ.desc.conv;
    Tensor *rows = &succ_slot.prefetchRows;
    const int64_t sow = succ.outW;
    succ_slot.prefetched = succ_fe.beginHashStream(
        succ_slot.prefetchRows, bits,
        [src, cspec, rows, sow](int64_t r0, int64_t r1) {
            extractChannelPatchRows(*src, *cspec, 0, 0, sow, r0, r1,
                                    *rows);
        });
}

} // namespace

std::unique_ptr<PlanExec>
buildPlanExec(
    std::shared_ptr<const StepPlan> plan, int sig_bits,
    bool capture_records,
    const std::function<DetectionFrontend &(uint64_t)> &frontend_for)
{
    auto exec = std::make_unique<PlanExec>();
    exec->plan = plan;
    if (!plan || !plan->plannable)
        return exec;

    for (const LayerPlan &lp : plan->layers) {
        DetectionFrontend &fe = frontend_for(lp.desc.layerId);
        // Prime the frontend's per-shape knob memo so steady-state
        // passes never re-resolve (satellite: once per shape, not
        // once per step).
        fe.resolvedPipeFor(lp.rows);
        switch (lp.desc.kind) {
        case StepOpKind::Conv: {
            auto slot = std::make_unique<ConvPlanSlot>();
            slot->plan = &lp;
            slot->runtime = std::make_unique<ReuseRuntime>(fe, sig_bits);
            slot->bufs[0] = Tensor({lp.rows, lp.vecDim});
            slot->bufs[1] = Tensor({lp.rows, lp.vecDim});
            const ConvSpec &s = lp.desc.conv;
            const int64_t cin_g = s.inChannels / s.groups;
            slot->order.reserve(static_cast<size_t>(lp.passes));
            for (int64_t b = 0; b < plan->batch; ++b)
                for (int64_t g = 0; g < s.groups; ++g)
                    for (int64_t ic = 0; ic < cin_g; ++ic)
                        slot->order.push_back({b, g, ic});
            if (capture_records) {
                slot->cols.resize(
                    static_cast<size_t>(lp.backwardSlots));
                for (auto &c : slot->cols)
                    c.resize(static_cast<size_t>(lp.rows * lp.vecDim));
                slot->gcols.resize(
                    static_cast<size_t>(lp.backwardSlots));
                for (auto &c : slot->gcols)
                    c.resize(static_cast<size_t>(lp.rows));
                slot->dwRows = Tensor({lp.rows, lp.vecDim});
            }
            exec->conv.emplace(lp.desc.layerId, std::move(slot));
            break;
        }
        case StepOpKind::Dense: {
            auto slot = std::make_unique<RowPlanSlot>();
            slot->plan = &lp;
            slot->runtime = std::make_unique<ReuseRuntime>(fe, sig_bits);
            slot->ownerOfEntry.reserve(
                static_cast<size_t>(fe.entries()));
            exec->row.emplace(lp.desc.layerId, std::move(slot));
            break;
        }
        case StepOpKind::Attention: {
            auto slot = std::make_unique<RowPlanSlot>();
            slot->plan = &lp;
            slot->runtime = std::make_unique<ReuseRuntime>(fe, sig_bits);
            exec->row.emplace(lp.desc.layerId, std::move(slot));
            break;
        }
        default:
            break;
        }
    }

    // Arm the fused edges: the predecessor's slot fires the
    // successor's first-channel extraction + hash once output channel
    // 0 of image 0 is final (its first in-flight chain drained on the
    // pass of the last input channel of image 0, group 0).
    for (size_t i = 0; i < plan->layers.size(); ++i) {
        const LayerPlan &lp = plan->layers[i];
        if (lp.nextConv < 0)
            continue;
        const LayerPlan &sp =
            plan->layers[static_cast<size_t>(lp.nextConv)];
        ConvPlanSlot *pred = exec->convSlot(lp.desc.layerId);
        ConvPlanSlot *succ = exec->convSlot(sp.desc.layerId);
        if (!pred || !succ)
            continue;
        DetectionFrontend &pred_fe = frontend_for(lp.desc.layerId);
        DetectionFrontend &succ_fe = frontend_for(sp.desc.layerId);
        // Gate on the RESOLVED per-pass decisions (Auto resolves from
        // threads x rows): the predecessor only fires onChainDrained
        // when its own passes stream, and the successor only consumes
        // a prefetched job on its overlapped path.
        if (!pred_fe.overlapEnabledFor(lp.rows) ||
            !succ_fe.overlapEnabledFor(sp.rows))
            continue; // serial execution: no window to hide the hash in
        pred->prefetchAfterPass =
            lp.desc.conv.inChannels / lp.desc.conv.groups - 1;
        succ->prefetchRows = Tensor({sp.rows, sp.vecDim});
        succ->edgeSlice = Tensor({1, 1, lp.outH, lp.outW});
        const LayerPlan *pred_plan = &lp;
        const LayerPlan *succ_plan = &sp;
        DetectionFrontend *sfe = &succ_fe;
        pred->prefetchNext = [pred_plan, succ_plan, succ, sfe,
                              sig_bits](const Tensor &out) {
            fireConvPrefetch(out, *pred_plan, *succ_plan, *succ, *sfe,
                             sig_bits);
        };
    }
    return exec;
}

} // namespace mercury
