#include "core/signature_table.hpp"

#include "util/logging.hpp"

namespace mercury {

void
SignatureTable::append(Signature sig, int64_t entry_id)
{
    rows_.push_back({std::move(sig), entry_id});
}

const SignatureTable::Row &
SignatureTable::at(int64_t i) const
{
    if (i < 0 || i >= size())
        panic("signature table index ", i, " out of range for ", size());
    return rows_[static_cast<size_t>(i)];
}

const Signature &
SignatureTable::signature(int64_t i) const
{
    return at(i).sig;
}

int64_t
SignatureTable::entryId(int64_t i) const
{
    return at(i).entryId;
}

void
SignatureTable::clear()
{
    rows_.clear();
}

uint64_t
SignatureTable::storageBytes() const
{
    uint64_t bytes = 0;
    for (const Row &r : rows_) {
        // Signature bits rounded to bytes plus a 4-byte entry id.
        bytes += static_cast<uint64_t>((r.sig.bits() + 7) / 8) + 4;
    }
    return bytes;
}

} // namespace mercury
