/**
 * @file
 * Adaptation in MERCURY (§III-D):
 *
 *  - Signature length growth: training loss is observed every
 *    iteration; if it stays flat for K consecutive iterations the
 *    signature grows by one bit (up to a maximum), so only vectors
 *    with a higher degree of similarity keep reusing results as the
 *    model becomes more sensitive.
 *
 *  - Per-layer stoppage: for every layer the MERCURY cycle cost
 *    (computation + signature generation, CS) is compared with the
 *    baseline cost (CB) each batch; after T consecutive batches where
 *    CS >= CB the layer's similarity detection is switched off.
 */

#ifndef MERCURY_CORE_ADAPTIVE_HPP
#define MERCURY_CORE_ADAPTIVE_HPP

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace mercury {

/** Signature-length and per-layer on/off controller. */
class AdaptiveController
{
  public:
    /**
     * @param cfg        source of K, T, initial/max signature bits
     * @param num_layers number of layers to track
     */
    AdaptiveController(const AcceleratorConfig &cfg, int num_layers);

    /** Current signature length. */
    int signatureBits() const { return sigBits_; }

    /** Number of tracked layers. */
    int numLayers() const
    {
        return static_cast<int>(layerState_.size());
    }

    /**
     * Observe this iteration's average loss; grows the signature when
     * the loss has been flat (relative change below `flat_tol`) for K
     * consecutive iterations.
     */
    void observeLoss(double loss, double flat_tol = 0.01);

    /**
     * Observe one batch's cycle costs for a layer; turns detection
     * off after T consecutive batches with mercury_cycles >=
     * baseline_cycles. Once off, a layer stays off (the paper stops
     * generating signatures permanently).
     */
    void observeLayerCycles(int layer, uint64_t mercury_cycles,
                            uint64_t baseline_cycles);

    /** Is similarity detection still on for this layer? */
    bool layerOn(int layer) const;

    /** Number of layers with detection on / off. */
    int layersOn() const;
    int layersOff() const;

  private:
    struct LayerState
    {
        int consecutiveCostlier = 0;
        bool on = true;
    };

    int sigBits_;
    int maxBits_;
    int plateauK_;
    int stoppageT_;
    double lastLoss_;
    bool hasLastLoss_;
    int flatIterations_;
    std::vector<LayerState> layerState_;

    void checkLayer(int layer) const;
};

} // namespace mercury

#endif // MERCURY_CORE_ADAPTIVE_HPP
