/**
 * @file
 * RPQ signatures: variable-length bit sequences produced by random
 * projection + sign quantization (§II-A). Two input vectors with the
 * same signature are considered similar.
 */

#ifndef MERCURY_CORE_SIGNATURE_HPP
#define MERCURY_CORE_SIGNATURE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mercury {

/** A bit sequence of explicit length with value semantics. */
class Signature
{
  public:
    /** Empty signature (length 0). */
    Signature() = default;

    /** Zero-initialized signature of the given bit length. */
    explicit Signature(int bits);

    int bits() const { return bits_; }

    /** Read bit i (0-based). */
    bool bit(int i) const;

    /** Set bit i (0-based). */
    void setBit(int i, bool value);

    /** Append one bit, growing the length (adaptive growth §III-D). */
    void appendBit(bool value);

    /**
     * Truncated copy with the first `bits` bits (signatures of
     * different adaptive lengths compare on their common prefix only
     * via this helper; operator== requires equal lengths).
     */
    Signature prefix(int bits) const;

    bool operator==(const Signature &other) const;
    bool operator!=(const Signature &other) const
    {
        return !(*this == other);
    }

    /** Deterministic 64-bit hash (stable across platforms/runs). */
    uint64_t hash() const;

    /** Bit string, most significant first, e.g. "10110". */
    std::string str() const;

  private:
    int bits_ = 0;
    std::vector<uint64_t> words_;

    static int wordsFor(int bits) { return (bits + 63) / 64; }
    void checkIndex(int i) const;
};

} // namespace mercury

#endif // MERCURY_CORE_SIGNATURE_HPP
