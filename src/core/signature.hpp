/**
 * @file
 * RPQ signatures: variable-length bit sequences produced by random
 * projection + sign quantization (§II-A). Two input vectors with the
 * same signature are considered similar.
 *
 * Storage is small-buffer optimized: the first 64 bits live inline
 * (word0_) and only longer signatures allocate an overflow vector.
 * Practical signature lengths sit well under 64 bits (the adaptive
 * controller tops out at 16–32), so the hashing hot path — thousands
 * of Signature constructions per channel pass in the streaming
 * pipeline — performs zero heap allocations.
 */

#ifndef MERCURY_CORE_SIGNATURE_HPP
#define MERCURY_CORE_SIGNATURE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mercury {

/** A bit sequence of explicit length with value semantics. */
class Signature
{
  public:
    /** Empty signature (length 0). */
    Signature() = default;

    /** Zero-initialized signature of the given bit length. */
    explicit Signature(int bits);

    /**
     * Signature from pre-packed little-endian words (the sign-pack
     * kernel's output format): bit i is (words[i/64] >> (i%64)) & 1.
     * Bits beyond `bits` in the last word are masked off.
     */
    static Signature fromWords(int bits, const uint64_t *words);

    /** 64-bit words needed for a bit length. */
    static int wordsFor(int bits) { return (bits + 63) / 64; }

    int bits() const { return bits_; }

    /** Read bit i (0-based). */
    bool bit(int i) const
    {
        checkIndex(i);
        return (word(i >> 6) >> (i & 63)) & 1;
    }

    /** Set bit i (0-based). */
    void setBit(int i, bool value)
    {
        checkIndex(i);
        const uint64_t mask = 1ull << (i & 63);
        uint64_t &w = wordRef(i >> 6);
        if (value)
            w |= mask;
        else
            w &= ~mask;
    }

    /** Append one bit, growing the length (adaptive growth §III-D). */
    void appendBit(bool value);

    /**
     * Truncated copy with the first `bits` bits (signatures of
     * different adaptive lengths compare on their common prefix only
     * via this helper; operator== requires equal lengths).
     */
    Signature prefix(int bits) const;

    bool operator==(const Signature &other) const
    {
        return bits_ == other.bits_ && word0_ == other.word0_ &&
               overflow_ == other.overflow_;
    }
    bool operator!=(const Signature &other) const
    {
        return !(*this == other);
    }

    /** Deterministic 64-bit hash (stable across platforms/runs). */
    uint64_t hash() const;

    /**
     * Packed word w of the fromWords layout (bit i lives at
     * words[i/64] bit i%64) — the serialization inverse of fromWords.
     */
    uint64_t packedWord(int w) const { return word(w); }

    /** Bit string, most significant first, e.g. "10110". */
    std::string str() const;

  private:
    int bits_ = 0;
    uint64_t word0_ = 0;             ///< inline first word (bits 0..63)
    std::vector<uint64_t> overflow_; ///< words 1.. for bits_ > 64

    uint64_t word(int w) const
    {
        return w == 0 ? word0_ : overflow_[static_cast<size_t>(w - 1)];
    }
    uint64_t &wordRef(int w)
    {
        return w == 0 ? word0_ : overflow_[static_cast<size_t>(w - 1)];
    }
    void checkIndex(int i) const;
};

} // namespace mercury

#endif // MERCURY_CORE_SIGNATURE_HPP
