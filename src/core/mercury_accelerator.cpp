#include "core/mercury_accelerator.hpp"

#include <cmath>

#include "sim/global_buffer.hpp"
#include "util/logging.hpp"

namespace mercury {

double
TrainingReport::signatureFraction() const
{
    const uint64_t total = totals.mercuryTotal();
    return total ? static_cast<double>(totals.signature) /
                       static_cast<double>(total)
                 : 0.0;
}

MercuryAccelerator::MercuryAccelerator(const AcceleratorConfig &cfg,
                                       std::vector<LayerShape> model)
    : config_(cfg), model_(std::move(model)),
      cost_(sim::CostModel::create(cfg))
{
    if (model_.empty())
        fatal("MercuryAccelerator needs at least one layer");
    if (cfg.pipelineBlockRows <= 0 || cfg.pipelineShards <= 0 ||
        cfg.pipelineThreads < 0) {
        fatal("invalid detection-pipeline knobs: blockRows ",
              cfg.pipelineBlockRows, ", shards ", cfg.pipelineShards,
              ", threads ", cfg.pipelineThreads);
    }
}

bool
MercuryAccelerator::backwardReusesSignatures(size_t l) const
{
    // §III-C2: O_l equals I_{l+1}, so if the consumer layer's filters
    // have the same dimensions as layer l's, its forward signatures
    // (and hitmap) apply to dO_l directly. Pooling layers have no
    // filters; the condition is checked against the next layer that
    // does.
    const LayerShape &self = model_[l];
    if (self.type != LayerType::Conv)
        return false;
    for (size_t n = l + 1; n < model_.size(); ++n) {
        const LayerShape &next = model_[n];
        if (next.type == LayerType::Pool)
            continue;
        return next.type == LayerType::Conv &&
               next.kernel == self.kernel;
    }
    return false;
}

uint64_t
MercuryAccelerator::baselineBatchCycles(int64_t batch) const
{
    uint64_t total = 0;
    for (size_t l = 0; l < model_.size(); ++l) {
        const LayerShape &shape = model_[l];
        const uint64_t fwd = cost_->baselineCycles(shape, batch);
        total += fwd;
        if (!shape.reusable())
            continue;
        // Backward: weight-gradient pass always; input-gradient pass
        // except for the first layer.
        total += fwd;
        if (l > 0)
            total += fwd;
    }
    return total;
}

TrainingReport
MercuryAccelerator::train(SimilaritySource &source, int batches,
                          int64_t batch,
                          std::function<double(int)> loss_fn,
                          int warmup_batches)
{
    if (batches <= 0 || batch <= 0)
        fatal("train needs positive batches and batch size");
    if (warmup_batches < 0)
        fatal("negative warmup");
    if (!loss_fn) {
        // Smooth decaying loss that plateaus after ~60% of training,
        // so the adaptive signature growth engages late in training
        // exactly as in the paper's description.
        loss_fn = [batches](int b) {
            const double progress =
                static_cast<double>(b) / std::max(batches - 1, 1);
            return 0.5 + 2.0 * std::exp(-10.0 * progress);
        };
    }

    AdaptiveController adaptive(config_,
                                static_cast<int>(model_.size()));
    TrainingReport report;
    report.layers.resize(model_.size());
    for (size_t l = 0; l < model_.size(); ++l) {
        report.layers[l].name = model_[l].name;
        report.layers[l].type = model_[l].type;
    }

    // Record spill accounting (§III-C2): with a replay knob on, each
    // reuse-enabled layer's SignatureRecord occupies the global
    // buffer from its forward pass until the whole forward sweep has
    // finished and its backward pass replays it — so the peak working
    // set is the sum over the layers alive at the forward/backward
    // turnaround.
    const bool holds_records =
        config_.backwardReuse || config_.weightGradReuse;
    GlobalBuffer record_buffer;
    std::vector<uint64_t> held(model_.size(), 0);

    for (int b = -warmup_batches; b < batches; ++b) {
        const bool warm = b < 0;
        const int sig_bits = adaptive.signatureBits();
        for (size_t l = 0; l < model_.size(); ++l) {
            const LayerShape &shape = model_[l];
            LayerReport &lr = report.layers[static_cast<size_t>(l)];
            const uint64_t base_fwd =
                cost_->baselineCycles(shape, batch);

            LayerCycles layer_batch; // this layer, this batch
            const bool reuse_on =
                shape.reusable() && adaptive.layerOn(static_cast<int>(l));
            if (!warm && holds_records && reuse_on) {
                held[l] = cost_->recordBytes(shape, batch, sig_bits);
                record_buffer.holdRecord(held[l]);
            }

            // ---- Forward propagation ----
            if (reuse_on) {
                const HitMix fwd_mix =
                    source.channelMix(shape, sig_bits, Phase::Forward);
                layer_batch += cost_->layerCost(
                    shape, batch, fwd_mix, sig_bits, false);
                lr.lastForwardMix = fwd_mix;
            } else {
                LayerCycles c;
                c.baseline = base_fwd;
                c.computation = base_fwd;
                layer_batch += c;
            }

            // ---- Backward propagation ----
            if (shape.reusable()) {
                // Weight gradients (Eq. 1): with weightGradReuse the
                // forward record is replayed (sum-then-multiply on
                // the forward mix); otherwise gradient vectors are
                // hashed anew every time.
                if (reuse_on && config_.weightGradReuse) {
                    layer_batch += cost_->weightGradCost(
                        shape, batch, lr.lastForwardMix, sig_bits);
                } else if (reuse_on) {
                    const HitMix dw_mix = source.channelMix(
                        shape, sig_bits, Phase::BackwardWeight);
                    layer_batch += cost_->layerCost(
                        shape, batch, dw_mix, sig_bits, false);
                } else {
                    LayerCycles c;
                    c.baseline = base_fwd;
                    c.computation = base_fwd;
                    layer_batch += c;
                }
                // Input gradients (Eq. 2), skipped for the first
                // layer. Signatures are reloaded from the forward
                // pass when filter dimensions match (§III-C2).
                if (l > 0) {
                    if (reuse_on) {
                        const HitMix dx_mix = source.channelMix(
                            shape, sig_bits, Phase::BackwardInput);
                        layer_batch += cost_->layerCost(
                            shape, batch, dx_mix, sig_bits,
                            backwardReusesSignatures(l));
                    } else {
                        LayerCycles c;
                        c.baseline = base_fwd;
                        c.computation = base_fwd;
                        layer_batch += c;
                    }
                }
            }

            adaptive.observeLayerCycles(static_cast<int>(l),
                                        layer_batch.mercuryTotal(),
                                        layer_batch.baseline);
            if (!warm) {
                lr.cycles += layer_batch;
                report.totals += layer_batch;
            }
        }
        // The backward sweep replays and releases the records in
        // reverse layer order.
        for (size_t l = model_.size(); l-- > 0;) {
            if (held[l]) {
                record_buffer.releaseRecord(held[l]);
                held[l] = 0;
            }
        }
        adaptive.observeLoss(loss_fn(std::max(b, 0)));
    }
    report.recordPeakBytes = record_buffer.peakRecordBytes();
    report.recordSpillBytes = record_buffer.signatureBytes();

    for (size_t l = 0; l < model_.size(); ++l) {
        report.layers[l].detectionOn =
            adaptive.layerOn(static_cast<int>(l));
    }
    report.finalSignatureBits = adaptive.signatureBits();
    // Count only layers MERCURY applies to, as in Fig. 14a.
    report.layersOn = 0;
    report.layersOff = 0;
    for (size_t l = 0; l < model_.size(); ++l) {
        if (!model_[l].reusable())
            continue;
        if (report.layers[l].detectionOn)
            ++report.layersOn;
        else
            ++report.layersOff;
    }
    return report;
}

} // namespace mercury
