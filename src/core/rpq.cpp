#include "core/rpq.hpp"

#include <algorithm>

#include "core/kernels/kernels.hpp"
#include "util/logging.hpp"

namespace mercury {

RPQEngine::RPQEngine(int64_t vector_dim, int max_bits, uint64_t seed)
    : vectorDim_(vector_dim), maxBits_(max_bits)
{
    if (vector_dim <= 0)
        panic("RPQEngine vector dim must be positive, got ", vector_dim);
    if (max_bits <= 0)
        panic("RPQEngine max bits must be positive, got ", max_bits);
    Rng rng(seed);
    matrix_.resize(static_cast<size_t>(vector_dim) *
                   static_cast<size_t>(max_bits));
    // Elements drawn from N(0, 1) as in classic random projection.
    for (auto &v : matrix_)
        v = static_cast<float>(rng.normal());
}

const float *
RPQEngine::interleaved() const
{
    std::call_once(interleavedOnce_, [this] {
        interleaved_.resize(matrix_.size());
        for (int n = 0; n < maxBits_; ++n)
            for (int64_t i = 0; i < vectorDim_; ++i)
                interleaved_[static_cast<size_t>(i) * maxBits_ + n] =
                    matrix_[static_cast<size_t>(n) * vectorDim_ + i];
    });
    return interleaved_.data();
}

float
RPQEngine::project(const float *vec, int n) const
{
    if (n < 0 || n >= maxBits_)
        panic("random filter index ", n, " out of range");
    const float *col =
        matrix_.data() + static_cast<size_t>(n) *
                             static_cast<size_t>(vectorDim_);
    float acc = 0.0f;
    for (int64_t i = 0; i < vectorDim_; ++i)
        acc += vec[i] * col[i];
    return acc;
}

Signature
RPQEngine::signatureOf(const float *vec, int bits) const
{
    if (bits > maxBits_)
        panic("asked for ", bits, " signature bits, engine has ",
              maxBits_);
    Signature sig(bits);
    for (int n = 0; n < bits; ++n) {
        // Sign quantization: negative projections map to 1, matching
        // the sign-bit rule of §II-A.
        sig.setBit(n, project(vec, n) < 0.0f);
    }
    return sig;
}

Signature
RPQEngine::signatureOfRow(const Tensor &rows, int64_t row, int bits) const
{
    if (rows.rank() != 2 || rows.dim(1) != vectorDim_)
        panic("signatureOfRow expects (n, ", vectorDim_, ") got ",
              rows.shapeStr());
    return signatureOf(rows.data() + row * vectorDim_, bits);
}

std::vector<Signature>
RPQEngine::signaturesOf(const Tensor &rows, int bits) const
{
    if (rows.rank() != 2 || rows.dim(1) != vectorDim_)
        panic("signaturesOf expects (n, ", vectorDim_, ") got ",
              rows.shapeStr());
    std::vector<Signature> out;
    out.reserve(static_cast<size_t>(rows.dim(0)));
    for (int64_t r = 0; r < rows.dim(0); ++r)
        out.push_back(signatureOf(rows.data() + r * vectorDim_, bits));
    return out;
}

void
RPQEngine::projectBlock(const Tensor &rows, int64_t row0, int64_t row1,
                        int bits, float *out) const
{
    if (rows.rank() != 2 || rows.dim(1) != vectorDim_)
        panic("projectBlock expects (n, ", vectorDim_, ") got ",
              rows.shapeStr());
    if (row0 < 0 || row1 < row0 || row1 > rows.dim(0))
        panic("projectBlock row range [", row0, ", ", row1,
              ") outside 0..", rows.dim(0));
    if (bits <= 0 || bits > maxBits_)
        panic("projectBlock asked for ", bits, " bits, engine has ",
              maxBits_);
    // The active kernel table does the work: every table accumulates
    // each (row, filter) sum in ascending element order with mul+add,
    // so results are bit-identical to the scalar project() path no
    // matter which table dispatched. Only tables that read the
    // bit-interleaved mirror pay for building it.
    const kernels::KernelOps &k = kernels::ops();
    k.projectRows(rows.data() + row0 * vectorDim_, row1 - row0,
                  vectorDim_, matrix_.data(),
                  k.wantsInterleaved ? interleaved() : nullptr, maxBits_,
                  bits, out);
}

void
RPQEngine::signatureBlock(const Tensor &rows, int64_t row0, int64_t row1,
                          int bits, Signature *out) const
{
    // Tile so the projection block stays L1-resident even for long
    // signatures; the sign-pack kernel turns each tile's projections
    // into packed words, which construct Signatures without touching
    // individual bits.
    constexpr int64_t kTileRows = 32;
    const int wpr = Signature::wordsFor(bits);
    std::vector<float> proj(static_cast<size_t>(kTileRows) *
                            static_cast<size_t>(std::max(bits, 1)));
    std::vector<uint64_t> words(static_cast<size_t>(kTileRows) *
                                static_cast<size_t>(std::max(wpr, 1)));
    const kernels::KernelOps &k = kernels::ops();
    for (int64_t t0 = row0; t0 < row1; t0 += kTileRows) {
        const int64_t t1 = std::min(row1, t0 + kTileRows);
        projectBlock(rows, t0, t1, bits, proj.data());
        k.signPack(proj.data(), t1 - t0, bits, wpr, words.data());
        for (int64_t r = t0; r < t1; ++r) {
            out[r - row0] = Signature::fromWords(
                bits, words.data() + (r - t0) * wpr);
        }
    }
}

Tensor
RPQEngine::randomFilter2D(int n, int64_t k) const
{
    if (k * k != vectorDim_)
        panic("randomFilter2D: k*k = ", k * k, " != vector dim ",
              vectorDim_);
    Tensor f({k, k});
    const float *col =
        matrix_.data() + static_cast<size_t>(n) *
                             static_cast<size_t>(vectorDim_);
    for (int64_t i = 0; i < vectorDim_; ++i)
        f[i] = col[i];
    return f;
}

std::vector<bool>
RPQEngine::bitViaConvolution(const Tensor &image, int64_t k, int n) const
{
    if (image.rank() != 2)
        panic("bitViaConvolution expects a 2D image, got ",
              image.shapeStr());
    Tensor filter = randomFilter2D(n, k);
    const int64_t oh = image.dim(0) - k + 1;
    const int64_t ow = image.dim(1) - k + 1;
    std::vector<bool> bits;
    bits.reserve(static_cast<size_t>(oh * ow));
    for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
            float acc = 0.0f;
            for (int64_t ky = 0; ky < k; ++ky)
                for (int64_t kx = 0; kx < k; ++kx)
                    acc += image.at2(y + ky, x + kx) *
                           filter.at2(ky, kx);
            bits.push_back(acc < 0.0f);
        }
    }
    return bits;
}

} // namespace mercury
