/**
 * @file
 * Functional fully connected layer with MERCURY reuse (§III-C3).
 *
 * Input rows of a minibatch are hashed; a row whose signature HITs
 * receives every weight-column result from the "earlier PE" that owns
 * the matching signature instead of recomputing the dot products.
 *
 * Overlap (§III-B, Fig. 8): with the frontend's `overlap` knob set
 * and a worker pool available, forward() consumes the detection
 * pipeline's streaming block hand-off — computed rows of a delivered
 * block fan out to the pool while later blocks are still hashing, and
 * HIT rows are forwarded after the joins (owners are always computed
 * rows, so forwarding chains have depth one). Outputs, owner maps,
 * and statistics are bit-identical to the serial run-then-filter
 * path. forward() itself is single-caller: one thread drives an
 * engine (or a shared frontend) at a time.
 */

#ifndef MERCURY_CORE_FC_ENGINE_HPP
#define MERCURY_CORE_FC_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mcache.hpp"
#include "core/reuse_runtime.hpp" // ReuseStats
#include "core/runtime_planner.hpp" // RowPlanSlot
#include "pipeline/detection_frontend.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Functional FC-layer engine with MERCURY computation reuse. */
class FcEngine
{
  public:
    /**
     * @param cache    MCACHE instance (only its tag machinery is
     *                 used; whole output rows live in the forwarding
     *                 buffer as in §III-C3)
     * @param sig_bits signature length
     * @param seed     per-layer projection seed
     * @param pipe     pipeline knobs for the internal front-end
     */
    FcEngine(MCache &cache, int sig_bits, uint64_t seed,
             const PipelineConfig &pipe = {});

    /** Run through a shared detection front-end. */
    FcEngine(DetectionFrontend &frontend, int sig_bits);

    /**
     * Reuse-enabled product: (N, D) x (D, M) -> (N, M).
     *
     * @param owner_rows filled with the owner row index each input
     *        row's result came from (own index when computed); lets
     *        tests verify the forwarding pattern. May be null.
     * @param record when non-null, cleared and filled with the
     *        minibatch's single detection pass for the backward
     *        replay (§III-C2)
     * @param plan planned execution state (persistent runtime and
     *        owner buffers) from the RuntimePlanner; null runs the
     *        unplanned path. Bit-identical either way.
     */
    Tensor forward(const Tensor &input, const Tensor &weight,
                   ReuseStats &stats,
                   std::vector<int64_t> *owner_rows = nullptr,
                   SignatureRecord *record = nullptr,
                   RowPlanSlot *plan = nullptr);

    /**
     * Input-gradient pass with replayed reuse (§III-C2):
     * (N, M) x (D, M)^T -> (N, D). The record captured by forward()
     * decides the skip set — a forward-HIT row receives its owner
     * row's input-gradient row instead of recomputing the M x D
     * products (the same "earlier PE" forwarding as forward, §III-C3).
     * Bit-identical to matmulTransposeB(grad, weight) when the record
     * holds no hits.
     */
    Tensor backwardInput(const Tensor &grad, const Tensor &weight,
                         const SignatureRecord &record, ReuseStats &stats,
                         RowPlanSlot *plan = nullptr);

    /**
     * Weight-gradient pass with replayed reuse (§III-C2, Eq. 1):
     * dW = Xt G = Σ_i x_i ⊗ g_i over the minibatch rows. A
     * forward-HIT row's contribution factors through its owner's
     * input row as x_owner ⊗ (Σ g over the owner's hit-group) —
     * sum-then-multiply, one outer product per group. Bit-identical
     * to matmul(transpose2d(input), grad) when the record holds no
     * hits; exact up to float-summation order of the grouped gradient
     * rows otherwise.
     *
     * @param input the forward minibatch input (N, D)
     * @param grad  the output gradient (N, M)
     */
    Tensor backwardWeights(const Tensor &input, const Tensor &grad,
                           const SignatureRecord &record,
                           ReuseStats &stats,
                           RowPlanSlot *plan = nullptr);

    /** Signature length this engine detects with. */
    int signatureBits() const { return frontend_.signatureBits(); }

  private:
    FrontendHandle frontend_;
};

} // namespace mercury

#endif // MERCURY_CORE_FC_ENGINE_HPP
