/**
 * @file
 * Shared backward replay walk for the row-forwarding reuse engines
 * (FC §III-C3, attention §III-C4, both under §III-C2 signature
 * replay): every row of the recorded pass either computes its
 * gradient row or — when it was a forward HIT — copies its owner
 * row's result. One definition keeps the hand-off discipline (owner
 * rows always computed first; HIT copies deferred until after the
 * compute joins in the pooled mode) in a single place for both
 * engines.
 */

#ifndef MERCURY_CORE_REUSE_REPLAY_HPP
#define MERCURY_CORE_REUSE_REPLAY_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/conv_reuse_engine.hpp" // ReuseStats
#include "pipeline/detection_frontend.hpp"
#include "pipeline/signature_record.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/**
 * Walk one recorded pass row by row: `compute_row(i)` for rows that
 * computed forward, `copy_row(i, owner)` for forward-HIT rows, with
 * `row_skip_cost` MACs booked into `stats.macsSkipped` per copied
 * row.
 *
 * Serial mode walks in stream order — owners are earlier rows, so
 * their output rows are filled before any HIT row copies them. With
 * the frontend's overlap knob and a pool, the replayed stream's
 * computed rows fan out through a TaskGroup (they are mutually
 * independent) and HIT rows are copied after the joins — owners are
 * always computed rows, so forwarding chains have depth one. Both
 * orders produce identical results; compute_row/copy_row must write
 * disjoint rows (one invocation per row).
 */
template <typename ComputeRow, typename CopyRow>
inline void
replayRowBackward(DetectionFrontend &fe, const SignatureRecord &record,
                  const SignatureRecord::Pass &pass,
                  uint64_t row_skip_cost, ReuseStats &stats,
                  const ComputeRow &compute_row, const CopyRow &copy_row)
{
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);

    if (fe.overlapEnabled()) {
        ThreadPool *pool = fe.workerPool();
        TaskGroup computes(pool);
        std::vector<int64_t> forwards;
        fe.replayStream(pass, [&](const DetectionBlock &blk) {
            std::vector<int64_t> computed;
            for (int64_t i = blk.row0; i < blk.row1; ++i) {
                if (owner[static_cast<size_t>(i)] != i) {
                    forwards.push_back(i);
                    stats.macsSkipped += row_skip_cost;
                } else {
                    computed.push_back(i);
                }
            }
            if (!computed.empty()) {
                computes.run(
                    [&compute_row, batch = std::move(computed)] {
                        for (const int64_t i : batch)
                            compute_row(i);
                    });
            }
        });
        computes.wait();
        pool->parallelFor(
            static_cast<int64_t>(forwards.size()), [&](int64_t f) {
                const int64_t i = forwards[static_cast<size_t>(f)];
                copy_row(i, owner[static_cast<size_t>(i)]);
            });
        return;
    }

    for (int64_t i = 0; i < pass.rows; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o != i) {
            copy_row(i, o);
            stats.macsSkipped += row_skip_cost;
            continue;
        }
        compute_row(i);
    }
}

} // namespace mercury

#endif // MERCURY_CORE_REUSE_REPLAY_HPP
