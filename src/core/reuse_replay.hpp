/**
 * @file
 * Shared backward replay walk for the row-forwarding reuse engines
 * (FC §III-C3, attention §III-C4, both under §III-C2 signature
 * replay): every row of the recorded pass either computes its
 * gradient row or — when it was a forward HIT — copies its owner
 * row's result. One definition keeps the hand-off discipline (owner
 * rows always computed first; HIT copies deferred until after the
 * compute joins in the pooled mode) in a single place for both
 * engines.
 *
 * Also hosts the shared weight-gradient replay (ReuseSense-style
 * sum-then-multiply): the dW-shaped reductions of the FC layer
 * (dW = Xt G) and the attention projection factor (Xt X) are both
 * sums of per-row outer products, so a forward-HIT row's contribution
 * factors through its owner's row — sum the right-hand rows of each
 * owner's hit-group first, then do one outer product per group.
 */

#ifndef MERCURY_CORE_REUSE_REPLAY_HPP
#define MERCURY_CORE_REUSE_REPLAY_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/conv_reuse_engine.hpp" // ReuseStats
#include "pipeline/detection_frontend.hpp"
#include "pipeline/signature_record.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/**
 * Walk one recorded pass row by row: `compute_row(i)` for rows that
 * computed forward, `copy_row(i, owner)` for forward-HIT rows, with
 * `row_skip_cost` MACs booked into `stats.macsSkipped` per copied
 * row.
 *
 * Serial mode walks in stream order — owners are earlier rows, so
 * their output rows are filled before any HIT row copies them. With
 * the frontend's overlap knob and a pool, the replayed stream's
 * computed rows fan out through a TaskGroup (they are mutually
 * independent) and HIT rows are copied after the joins — owners are
 * always computed rows, so forwarding chains have depth one. Both
 * orders produce identical results; compute_row/copy_row must write
 * disjoint rows (one invocation per row).
 */
template <typename ComputeRow, typename CopyRow>
inline void
replayRowBackward(DetectionFrontend &fe, const SignatureRecord &record,
                  const SignatureRecord::Pass &pass,
                  uint64_t row_skip_cost, ReuseStats &stats,
                  const ComputeRow &compute_row, const CopyRow &copy_row)
{
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);

    if (fe.overlapEnabled()) {
        ThreadPool *pool = fe.workerPool();
        TaskGroup computes(pool);
        std::vector<int64_t> forwards;
        fe.replayStream(pass, [&](const DetectionBlock &blk) {
            std::vector<int64_t> computed;
            for (int64_t i = blk.row0; i < blk.row1; ++i) {
                if (owner[static_cast<size_t>(i)] != i) {
                    forwards.push_back(i);
                    stats.macsSkipped += row_skip_cost;
                } else {
                    computed.push_back(i);
                }
            }
            if (!computed.empty()) {
                computes.run(
                    [&compute_row, batch = std::move(computed)] {
                        for (const int64_t i : batch)
                            compute_row(i);
                    });
            }
        });
        computes.wait();
        pool->parallelFor(
            static_cast<int64_t>(forwards.size()), [&](int64_t f) {
                const int64_t i = forwards[static_cast<size_t>(f)];
                copy_row(i, owner[static_cast<size_t>(i)]);
            });
        return;
    }

    for (int64_t i = 0; i < pass.rows; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o != i) {
            copy_row(i, o);
            stats.macsSkipped += row_skip_cost;
            continue;
        }
        compute_row(i);
    }
}

/**
 * Weight-gradient replay of one recorded pass (§III-C2 applied to
 * Eq. 1): computes At B — the dW-shaped reduction Σ_r a_r ⊗ b_r over
 * the pass's n rows — with every forward-HIT row factored through its
 * owner (sum-then-multiply). Owners accumulate the b-rows of their
 * hit-group first (the owner's own row is a bit-exact copy, hits are
 * float adds), then each group performs one outer product with the
 * owner's a-row, in owner-ascending order.
 *
 * With zero hits every group is a singleton, so the element
 * accumulation order — contraction rows ascending, with the same
 * skip of zero-valued a elements — reproduces
 * matmul(transpose2d(a), b) bit for bit. With hits the result is the
 * exact sum up to float-summation order of the grouped b-rows.
 *
 * `stats.macsSkipped` gains da x db per HIT row (its outer product is
 * replaced by db accumulate adds, which the cycle model charges
 * separately as per-group accumulate cycles). In overlapped mode the
 * group sums consume the replayed block hand-off — block by block on
 * the calling thread, purely to keep the one stream discipline (and
 * the sanitizer-stressed code path) every backward consumer shares;
 * nothing can overlap with the scan, since no group is complete
 * before the last row. The outer products then fan out over the
 * pool, one output row per task; results are bit-identical to the
 * serial walk.
 */
inline Tensor
replayWeightGrad(DetectionFrontend &fe, const SignatureRecord &record,
                 const SignatureRecord::Pass &pass, const Tensor &a,
                 const Tensor &b, ReuseStats &stats)
{
    const int64_t n = pass.rows;
    const int64_t da = a.dim(1);
    const int64_t db = b.dim(1);
    std::vector<int64_t> owner;
    record.ownersOf(pass, owner);

    // Group sums over the pass's b-rows: the owner slot starts as a
    // copy of its own row (bit-exact for singleton groups), HIT rows
    // fold in with adds. Stream order guarantees the owner's copy
    // lands before any of its hits accumulate.
    std::vector<float> gsum(static_cast<size_t>(n * db), 0.0f);
    const auto sum_rows = [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
            const int64_t o = owner[static_cast<size_t>(r)];
            float *dst = gsum.data() + o * db;
            const float *src = b.data() + r * db;
            if (o == r) {
                std::copy(src, src + db, dst);
            } else {
                for (int64_t p = 0; p < db; ++p)
                    dst[p] += src[p];
                stats.macsSkipped += static_cast<uint64_t>(da) *
                                     static_cast<uint64_t>(db);
            }
        }
    };

    // One output row j of At B: one multiply per group, owners
    // ascending — the same contraction order (and zero-skip) as
    // matmul(transpose2d(a), b) walks for row j.
    Tensor out({da, db});
    const auto mul_row = [&](int64_t j) {
        for (int64_t r = 0; r < n; ++r) {
            if (owner[static_cast<size_t>(r)] != r)
                continue;
            const float av = a.at2(r, j);
            if (av == 0.0f)
                continue;
            const float *gs = gsum.data() + r * db;
            for (int64_t p = 0; p < db; ++p)
                out.at2(j, p) += av * gs[p];
        }
    };

    if (fe.overlapEnabled()) {
        // The group sums consume the replayed hand-off on the calling
        // thread — a cheap serial scan kept on the shared stream
        // discipline; the per-group outer products then fan out over
        // the pool, one disjoint output row per task.
        fe.replayStream(pass, [&](const DetectionBlock &blk) {
            sum_rows(blk.row0, blk.row1);
        });
        fe.workerPool()->parallelFor(da, mul_row);
        return out;
    }

    sum_rows(0, n);
    for (int64_t j = 0; j < da; ++j)
        mul_row(j);
    return out;
}

} // namespace mercury

#endif // MERCURY_CORE_REUSE_REPLAY_HPP
