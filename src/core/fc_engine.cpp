#include "core/fc_engine.hpp"

#include "core/reuse_replay.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

FcEngine::FcEngine(MCache &cache, int sig_bits, uint64_t seed,
                   const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "FcEngine")
{
}

FcEngine::FcEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "FcEngine")
{
}

Tensor
FcEngine::forward(const Tensor &input, const Tensor &weight,
                  ReuseStats &stats, std::vector<int64_t> *owner_rows,
                  SignatureRecord *record)
{
    if (record)
        record->clear();
    if (input.rank() != 2 || weight.rank() != 2 ||
        input.dim(1) != weight.dim(0)) {
        panic("FcEngine shape mismatch ", input.shapeStr(), " x ",
              weight.shapeStr());
    }
    const int64_t n = input.dim(0);
    const int64_t d = input.dim(1);
    const int64_t m = weight.dim(1);

    stats = ReuseStats{};
    stats.channelPasses = 1;
    stats.macsTotal =
        static_cast<uint64_t>(n) * static_cast<uint64_t>(d) *
        static_cast<uint64_t>(m);

    // The owner ("earlier PE", §III-C3) of each MCACHE entry is the
    // first row that inserted the signature; HIT rows receive the
    // owner's results. Owners are always computed rows (a HIT never
    // becomes an owner), so forwarding chains have depth one.
    std::vector<int64_t> owner_of_entry(
        static_cast<size_t>(frontend_->entries()), -1);
    if (owner_rows)
        owner_rows->assign(static_cast<size_t>(n), -1);

    Tensor out({n, m});

    // One computed output row: the row's dot product against every
    // weight column.
    const auto compute_row = [&](int64_t i) {
        for (int64_t j = 0; j < m; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += input.at2(i, e) * weight.at2(e, j);
            out.at2(i, j) = acc;
        }
    };
    // Owner bookkeeping for one row, in stream order. Returns the
    // owner (the row itself when it must compute).
    const auto owner_of = [&](int64_t i, const McacheResult &mr) {
        int64_t owner = i;
        if (mr.outcome == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(mr.entryId)] >= 0) {
            owner = owner_of_entry[static_cast<size_t>(mr.entryId)];
        } else if (mr.outcome == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(mr.entryId)] = i;
        }
        if (owner_rows)
            (*owner_rows)[static_cast<size_t>(i)] = owner;
        return owner;
    };

    if (frontend_->overlapEnabled()) {
        // Streaming pass: as each detection block is delivered, its
        // computed rows are fanned out to the pool (they are mutually
        // independent) while later blocks still hash; forwarded rows
        // are copied after the joins, since every owner is a computed
        // row. Bookkeeping runs on this thread in stream order.
        ThreadPool *pool = frontend_->workerPool();
        TaskGroup computes(pool);
        struct Forward
        {
            int64_t row;
            int64_t owner;
        };
        std::vector<Forward> forwards;
        const DetectionResult det = frontend_->detectStream(
            input, frontend_.signatureBits(),
            [&](const DetectionBlock &blk) {
                std::vector<int64_t> computed;
                for (int64_t i = blk.row0; i < blk.row1; ++i) {
                    const int64_t owner =
                        owner_of(i, blk.results[i - blk.row0]);
                    if (owner != i) {
                        forwards.push_back({i, owner});
                        stats.macsSkipped += static_cast<uint64_t>(d) *
                                             static_cast<uint64_t>(m);
                    } else {
                        computed.push_back(i);
                    }
                }
                if (!computed.empty()) {
                    computes.run([&compute_row,
                                  batch = std::move(computed)] {
                        for (const int64_t i : batch)
                            compute_row(i);
                    });
                }
            },
            record);
        stats.mix = det.mix();
        computes.wait();
        // Result forwarding from the earlier PEs, now all computed.
        pool->parallelFor(
            static_cast<int64_t>(forwards.size()), [&](int64_t f) {
                const Forward fwd = forwards[static_cast<size_t>(f)];
                for (int64_t j = 0; j < m; ++j)
                    out.at2(fwd.row, j) = out.at2(fwd.owner, j);
            });
        return out;
    }

    // Run-then-filter path: full detection pass, then one serial walk.
    const DetectionResult det =
        frontend_->detect(input, frontend_.signatureBits(), record);
    stats.mix = det.mix();
    for (int64_t i = 0; i < n; ++i) {
        const McacheResult mr{det.hitmap.outcome(i),
                              det.hitmap.entryId(i)};
        const int64_t owner = owner_of(i, mr);
        if (owner != i) {
            // Result forwarding from the earlier PE.
            for (int64_t j = 0; j < m; ++j)
                out.at2(i, j) = out.at2(owner, j);
            stats.macsSkipped += static_cast<uint64_t>(d) *
                                 static_cast<uint64_t>(m);
            continue;
        }
        compute_row(i);
    }
    return out;
}

Tensor
FcEngine::backwardInput(const Tensor &grad, const Tensor &weight,
                        const SignatureRecord &record, ReuseStats &stats)
{
    if (grad.rank() != 2 || weight.rank() != 2 ||
        grad.dim(1) != weight.dim(1)) {
        panic("FcEngine backward shape mismatch ", grad.shapeStr(),
              " x ", weight.shapeStr(), "^T");
    }
    const int64_t n = grad.dim(0);
    const int64_t d = weight.dim(0);
    const int64_t m = weight.dim(1);
    if (record.passCount() != 1)
        panic("FC backward needs the forward minibatch's single "
              "recorded pass, got ",
              record.passCount());
    const SignatureRecord::Pass &pass = record.pass(0);
    if (pass.rows != n)
        panic("recorded pass holds ", pass.rows, " rows, gradient has ",
              n);

    stats = ReuseStats{};
    stats.channelPasses = 1;
    stats.mix = pass.mix;
    stats.macsTotal = static_cast<uint64_t>(n) *
                      static_cast<uint64_t>(d) * static_cast<uint64_t>(m);

    Tensor out({n, d});
    // One computed input-gradient row: grad row i against every
    // transposed weight row — the same accumulation order as
    // matmulTransposeB, so a zero-hit replay is bit-identical.
    // Forward-HIT rows receive their owner's gradient row instead
    // (§III-C3 result forwarding, replayed).
    replayRowBackward(
        *frontend_, record, pass,
        static_cast<uint64_t>(d) * static_cast<uint64_t>(m), stats,
        [&](int64_t i) {
            for (int64_t j = 0; j < d; ++j) {
                float acc = 0.0f;
                for (int64_t p = 0; p < m; ++p)
                    acc += grad.at2(i, p) * weight.at2(j, p);
                out.at2(i, j) = acc;
            }
        },
        [&](int64_t i, int64_t o) {
            for (int64_t j = 0; j < d; ++j)
                out.at2(i, j) = out.at2(o, j);
        });
    return out;
}

Tensor
FcEngine::backwardWeights(const Tensor &input, const Tensor &grad,
                          const SignatureRecord &record, ReuseStats &stats)
{
    if (input.rank() != 2 || grad.rank() != 2 ||
        input.dim(0) != grad.dim(0)) {
        panic("FcEngine weight-gradient shape mismatch ",
              input.shapeStr(), "^T x ", grad.shapeStr());
    }
    const int64_t n = input.dim(0);
    const int64_t d = input.dim(1);
    const int64_t m = grad.dim(1);
    if (record.passCount() != 1)
        panic("FC weight gradient needs the forward minibatch's single "
              "recorded pass, got ",
              record.passCount());
    const SignatureRecord::Pass &pass = record.pass(0);
    if (pass.rows != n)
        panic("recorded pass holds ", pass.rows, " rows, gradient has ",
              n);

    stats = ReuseStats{};
    stats.channelPasses = 1;
    stats.mix = pass.mix;
    stats.macsTotal = static_cast<uint64_t>(n) *
                      static_cast<uint64_t>(d) * static_cast<uint64_t>(m);

    // Sum-then-multiply (§III-C2 on Eq. 1): group the output
    // gradients by forward owner, then one outer product per group
    // with the owner's input row.
    return replayWeightGrad(*frontend_, record, pass, input, grad,
                            stats);
}

} // namespace mercury
