#include "core/fc_engine.hpp"

#include "util/logging.hpp"

namespace mercury {

FcEngine::FcEngine(MCache &cache, int sig_bits, uint64_t seed,
                   const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "FcEngine")
{
}

FcEngine::FcEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "FcEngine")
{
}

Tensor
FcEngine::forward(const Tensor &input, const Tensor &weight,
                  ReuseStats &stats, std::vector<int64_t> *owner_rows)
{
    if (input.rank() != 2 || weight.rank() != 2 ||
        input.dim(1) != weight.dim(0)) {
        panic("FcEngine shape mismatch ", input.shapeStr(), " x ",
              weight.shapeStr());
    }
    const int64_t n = input.dim(0);
    const int64_t d = input.dim(1);
    const int64_t m = weight.dim(1);

    DetectionResult det =
        frontend_->detect(input, frontend_.signatureBits());

    stats = ReuseStats{};
    stats.mix = det.mix();
    stats.channelPasses = 1;
    stats.macsTotal =
        static_cast<uint64_t>(n) * static_cast<uint64_t>(d) *
        static_cast<uint64_t>(m);

    // The owner ("earlier PE", §III-C3) of each MCACHE entry is the
    // first row that inserted the signature; HIT rows receive the
    // owner's results.
    std::vector<int64_t> owner_of_entry(
        static_cast<size_t>(frontend_->entries()), -1);
    if (owner_rows)
        owner_rows->assign(static_cast<size_t>(n), -1);

    Tensor out({n, m});
    for (int64_t i = 0; i < n; ++i) {
        const McacheOutcome outc = det.hitmap.outcome(i);
        const int64_t id = det.hitmap.entryId(i);
        int64_t owner = i;
        if (outc == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(id)] >= 0) {
            owner = owner_of_entry[static_cast<size_t>(id)];
        } else if (outc == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(id)] = i;
        }
        if (owner_rows)
            (*owner_rows)[static_cast<size_t>(i)] = owner;

        if (owner != i) {
            // Result forwarding from the earlier PE.
            for (int64_t j = 0; j < m; ++j)
                out.at2(i, j) = out.at2(owner, j);
            stats.macsSkipped += static_cast<uint64_t>(d) *
                                 static_cast<uint64_t>(m);
            continue;
        }
        for (int64_t j = 0; j < m; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += input.at2(i, e) * weight.at2(e, j);
            out.at2(i, j) = acc;
        }
    }
    return out;
}

} // namespace mercury
