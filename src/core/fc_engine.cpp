#include "core/fc_engine.hpp"

#include <optional>

#include "core/kernels/kernels.hpp"
#include "core/reuse_runtime.hpp"
#include "util/logging.hpp"

namespace mercury {

FcEngine::FcEngine(MCache &cache, int sig_bits, uint64_t seed,
                   const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "FcEngine")
{
}

FcEngine::FcEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "FcEngine")
{
}

Tensor
FcEngine::forward(const Tensor &input, const Tensor &weight,
                  ReuseStats &stats, std::vector<int64_t> *owner_rows,
                  SignatureRecord *record, RowPlanSlot *plan)
{
    if (plan && !plan->runtime)
        plan = nullptr; // defensive: run unplanned on a stale slot
    if (record)
        record->clear();
    if (input.rank() != 2 || weight.rank() != 2 ||
        input.dim(1) != weight.dim(0)) {
        panic("FcEngine shape mismatch ", input.shapeStr(), " x ",
              weight.shapeStr());
    }
    const int64_t n = input.dim(0);
    const int64_t d = input.dim(1);
    const int64_t m = weight.dim(1);

    stats = ReuseStats{};
    stats.macsTotal =
        static_cast<uint64_t>(n) * static_cast<uint64_t>(d) *
        static_cast<uint64_t>(m);

    // The owner ("earlier PE", §III-C3) of each MCACHE entry is the
    // first row that inserted the signature; HIT rows receive the
    // owner's results. Owners are always computed rows (a HIT never
    // becomes an owner), so forwarding chains have depth one. The
    // planned path reuses the slot's buffer instead of reallocating
    // one entry map per step.
    std::vector<int64_t> local_owner_of_entry;
    std::vector<int64_t> &owner_of_entry =
        plan ? plan->ownerOfEntry : local_owner_of_entry;
    owner_of_entry.assign(static_cast<size_t>(frontend_->entries()), -1);
    if (owner_rows)
        owner_rows->assign(static_cast<size_t>(n), -1);

    Tensor out({n, m});

    // One RowPass over the minibatch: stream-order owner bookkeeping
    // on the driving thread, computed rows fanned out (they are
    // mutually independent), HIT rows forwarded from their earlier
    // PE once every owner has computed.
    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    ReuseRuntime::RowPass pass;
    pass.ownerOf = [&](int64_t i, const McacheResult &mr) {
        int64_t owner = i;
        if (mr.outcome == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(mr.entryId)] >= 0) {
            owner = owner_of_entry[static_cast<size_t>(mr.entryId)];
        } else if (mr.outcome == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(mr.entryId)] = i;
        }
        if (owner_rows)
            (*owner_rows)[static_cast<size_t>(i)] = owner;
        return owner;
    };
    pass.computeRow = [&](int64_t i) {
        // The row's dot product against every weight column.
        for (int64_t j = 0; j < m; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += input.at2(i, e) * weight.at2(e, j);
            out.at2(i, j) = acc;
        }
    };
    pass.copyRow = [&](int64_t i, int64_t o) {
        // Result forwarding from the earlier PE.
        kernels::ops().copySpan(out.data() + i * m, out.data() + o * m,
                                m);
    };
    pass.copyRowSpan = [&](int64_t r0, int64_t r1, int64_t o0) {
        kernels::ops().copySpan(out.data() + r0 * m,
                                out.data() + o0 * m, (r1 - r0) * m);
    };
    pass.rowSkipCost =
        static_cast<uint64_t>(d) * static_cast<uint64_t>(m);

    rt.runRows(ReuseRuntime::StreamSource::live(input, record), pass,
               stats);
    return out;
}

Tensor
FcEngine::backwardInput(const Tensor &grad, const Tensor &weight,
                        const SignatureRecord &record, ReuseStats &stats,
                        RowPlanSlot *plan)
{
    if (plan && !plan->runtime)
        plan = nullptr;
    if (grad.rank() != 2 || weight.rank() != 2 ||
        grad.dim(1) != weight.dim(1)) {
        panic("FcEngine backward shape mismatch ", grad.shapeStr(),
              " x ", weight.shapeStr(), "^T");
    }
    const int64_t n = grad.dim(0);
    const int64_t d = weight.dim(0);
    const int64_t m = weight.dim(1);
    if (record.passCount() != 1)
        panic("FC backward needs the forward minibatch's single "
              "recorded pass, got ",
              record.passCount());
    const SignatureRecord::Pass &pass = record.pass(0);
    if (pass.rows != n)
        panic("recorded pass holds ", pass.rows, " rows, gradient has ",
              n);

    stats = ReuseStats{};
    stats.macsTotal = static_cast<uint64_t>(n) *
                      static_cast<uint64_t>(d) * static_cast<uint64_t>(m);

    std::vector<int64_t> local_owner;
    std::vector<int64_t> &owner = plan ? plan->owner : local_owner;
    record.ownersOf(pass, owner);

    Tensor out({n, d});
    // One replayed RowPass (§III-C2): a computed input-gradient row
    // is grad row i against every transposed weight row — the same
    // accumulation order as matmulTransposeB, so a zero-hit replay is
    // bit-identical. Forward-HIT rows receive their owner's gradient
    // row instead (§III-C3 result forwarding, replayed).
    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    ReuseRuntime::RowPass rp;
    rp.ownerOf = [&](int64_t i, const McacheResult &) {
        return owner[static_cast<size_t>(i)];
    };
    rp.computeRow = [&](int64_t i) {
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t p = 0; p < m; ++p)
                acc += grad.at2(i, p) * weight.at2(j, p);
            out.at2(i, j) = acc;
        }
    };
    rp.copyRow = [&](int64_t i, int64_t o) {
        kernels::ops().copySpan(out.data() + i * d, out.data() + o * d,
                                d);
    };
    rp.copyRowSpan = [&](int64_t r0, int64_t r1, int64_t o0) {
        kernels::ops().copySpan(out.data() + r0 * d,
                                out.data() + o0 * d, (r1 - r0) * d);
    };
    rp.rowSkipCost =
        static_cast<uint64_t>(d) * static_cast<uint64_t>(m);

    rt.runRows(ReuseRuntime::StreamSource::replay(pass), rp, stats);
    return out;
}

Tensor
FcEngine::backwardWeights(const Tensor &input, const Tensor &grad,
                          const SignatureRecord &record, ReuseStats &stats,
                          RowPlanSlot *plan)
{
    if (plan && !plan->runtime)
        plan = nullptr;
    if (input.rank() != 2 || grad.rank() != 2 ||
        input.dim(0) != grad.dim(0)) {
        panic("FcEngine weight-gradient shape mismatch ",
              input.shapeStr(), "^T x ", grad.shapeStr());
    }
    const int64_t n = input.dim(0);
    const int64_t d = input.dim(1);
    const int64_t m = grad.dim(1);
    if (record.passCount() != 1)
        panic("FC weight gradient needs the forward minibatch's single "
              "recorded pass, got ",
              record.passCount());
    const SignatureRecord::Pass &pass = record.pass(0);
    if (pass.rows != n)
        panic("recorded pass holds ", pass.rows, " rows, gradient has ",
              n);

    stats = ReuseStats{};
    stats.macsTotal = static_cast<uint64_t>(n) *
                      static_cast<uint64_t>(d) * static_cast<uint64_t>(m);

    // Sum-then-multiply (§III-C2 on Eq. 1): group the output
    // gradients by forward owner, then one outer product per group
    // with the owner's input row.
    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    return weightGradReplay(rt, record, pass, input, grad, stats);
}

} // namespace mercury
