#include "core/conv_reuse_engine.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

ConvReuseEngine::ConvReuseEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "ConvReuseEngine")
{
}

ConvReuseEngine::ConvReuseEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "ConvReuseEngine")
{
}

namespace {

/**
 * One filter pass over rows [r0, r1): HIT rows fetch the owner's dot
 * product from the MCACHE data plane (version slot `ver`), misses
 * compute, MAU rows deposit. Returns the MACs skipped. Rows must be
 * processed in stream order per filter so every HIT's owner (an
 * earlier MAU row) has already deposited — the serial path walks all
 * rows at once, the overlapped path keeps this invariant by chaining
 * a filter's blocks through one SerialExecutor.
 */
uint64_t
filterSegment(DetectionFrontend &fe, const Tensor &rows,
              const std::vector<McacheResult> &row_results,
              const float *w, int ver, int64_t r0, int64_t r1, int64_t d,
              float *out_base)
{
    uint64_t skipped = 0;
    for (int64_t i = r0; i < r1; ++i) {
        const McacheResult &mr = row_results[static_cast<size_t>(i)];
        float val;
        if (mr.outcome == McacheOutcome::Hit &&
            fe.readDataIfValid(mr.entryId, ver, val)) {
            // Reuse the earlier vector's result.
            skipped += static_cast<uint64_t>(d);
        } else {
            const float *row = rows.data() + i * d;
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += row[e] * w[e];
            val = acc;
            if (mr.outcome == McacheOutcome::Mau)
                fe.writeData(mr.entryId, ver, acc);
        }
        out_base[i] += val;
    }
    return skipped;
}

} // namespace

Tensor
ConvReuseEngine::forward(const Tensor &input, const Tensor &weight,
                         const Tensor &bias, const ConvSpec &spec,
                         ReuseStats &stats)
{
    if (input.rank() != 4 || weight.rank() != 4)
        panic("ConvReuseEngine expects rank-4 input and weight");
    const int64_t n = input.dim(0);
    const int64_t oh = spec.outH(input.dim(2));
    const int64_t ow = spec.outW(input.dim(3));
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;

    Tensor out({n, spec.outChannels, oh, ow});
    if (bias.numel()) {
        for (int64_t b = 0; b < n; ++b)
            for (int64_t oc = 0; oc < spec.outChannels; ++oc)
                for (int64_t i = 0; i < v; ++i)
                    out[out.offset4(b, oc, 0, 0) + i] = bias[oc];
    }

    // Channel-at-a-time extraction buffer.
    Tensor rows({v, d});
    const int versions = frontend_->dataVersions();
    const bool overlapped = frontend_->overlapEnabled();
    ThreadPool *pool = overlapped ? frontend_->workerPool() : nullptr;
    std::vector<McacheResult> row_results(static_cast<size_t>(v));

    // Weight pointer of one filter pass: filter `of` of group g
    // against input channel c.
    const auto weight_of = [&](int64_t g, int64_t of, int64_t ic) {
        const int64_t oc = g * cout_g + of;
        return weight.data() + ((oc * cin_g + ic) * k) * k;
    };

    stats = ReuseStats{};
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t ic = 0; ic < cin_g; ++ic) {
                const int64_t c = g * cin_g + ic;
                // Extract this channel's input vectors (Fig. 7a).
                int64_t r = 0;
                for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x, ++r) {
                        int64_t e = 0;
                        for (int64_t ky = 0; ky < k; ++ky) {
                            for (int64_t kx = 0; kx < k; ++kx, ++e) {
                                const int64_t iy =
                                    y * spec.stride - spec.pad + ky;
                                const int64_t ix =
                                    x * spec.stride - spec.pad + kx;
                                const bool inside =
                                    iy >= 0 && ix >= 0 &&
                                    iy < input.dim(2) && ix < input.dim(3);
                                rows.at2(r, e) =
                                    inside ? input.at4(b, c, iy, ix)
                                           : 0.0f;
                            }
                        }
                    }
                }

                DetectionResult det;
                // Filters already finished in the overlapped group 0.
                int64_t oc_done = 0;

                if (overlapped) {
                    // Streaming channel pass: the first `versions`
                    // filter passes consume detection blocks as they
                    // are delivered, each filter on its own serial
                    // chain (stream order per filter, filters in
                    // parallel), while later blocks still hash on the
                    // pool. detectStream's initial cache clear also
                    // clears every data version, so group 0 needs no
                    // separate invalidateAllData.
                    const int64_t group0 =
                        std::min<int64_t>(versions, cout_g);
                    std::vector<std::unique_ptr<SerialExecutor>> chains;
                    std::vector<uint64_t> chain_skipped(
                        static_cast<size_t>(group0), 0);
                    for (int64_t of = 0; of < group0; ++of)
                        chains.push_back(
                            std::make_unique<SerialExecutor>(pool));

                    det = frontend_->detectStream(
                        rows, frontend_.signatureBits(),
                        [&](const DetectionBlock &blk) {
                            // The block's result pointers die with the
                            // callback; copy into engine-owned storage
                            // the chains can read asynchronously.
                            std::copy(blk.results,
                                      blk.results + blk.rows(),
                                      row_results.begin() + blk.row0);
                            for (int64_t of = 0; of < group0; ++of) {
                                DetectionFrontend &fe = *frontend_;
                                chains[static_cast<size_t>(of)]->run(
                                    [&fe, &rows, &row_results,
                                     &chain_skipped, w = weight_of(g, of, ic),
                                     base = out.data() +
                                            out.offset4(b, g * cout_g + of,
                                                        0, 0),
                                     of, r0 = blk.row0, r1 = blk.row1,
                                     d] {
                                        chain_skipped[static_cast<size_t>(
                                            of)] +=
                                            filterSegment(
                                                fe, rows, row_results, w,
                                                static_cast<int>(of), r0,
                                                r1, d, base);
                                    });
                            }
                        });
                    for (auto &chain : chains)
                        chain->wait();
                    for (const uint64_t s : chain_skipped)
                        stats.macsSkipped += s;
                    oc_done = group0;
                } else {
                    // Run-then-filter: one full detection pass, then
                    // the filter passes below.
                    det = frontend_->detect(rows,
                                            frontend_.signatureBits());
                    for (int64_t i = 0; i < v; ++i) {
                        row_results[static_cast<size_t>(i)] = {
                            det.hitmap.outcome(i), det.hitmap.entryId(i)};
                    }
                }

                const HitMix mix = det.mix();
                stats.mix.vectors += mix.vectors;
                stats.mix.hit += mix.hit;
                stats.mix.mau += mix.mau;
                stats.mix.mnu += mix.mnu;
                ++stats.channelPasses;
                stats.macsTotal += static_cast<uint64_t>(v) *
                                   static_cast<uint64_t>(cout_g) *
                                   static_cast<uint64_t>(d);

                // Remaining filter passes in groups of `versions`
                // in-flight filters (the multi-version data of
                // Fig. 11). In overlapped mode the filters of a group
                // run in parallel on the pool — each filter is a
                // whole-row-range chain, so the owner-before-hit
                // order within a filter still holds.
                for (int64_t oc0 = oc_done; oc0 < cout_g;
                     oc0 += versions) {
                    frontend_->invalidateAllData();
                    const int64_t oc1 =
                        std::min<int64_t>(oc0 + versions, cout_g);
                    std::vector<uint64_t> skipped(
                        static_cast<size_t>(oc1 - oc0), 0);
                    const auto filter_pass = [&](int64_t fi) {
                        const int64_t of = oc0 + fi;
                        skipped[static_cast<size_t>(fi)] = filterSegment(
                            *frontend_, rows, row_results,
                            weight_of(g, of, ic),
                            static_cast<int>(fi), 0, v, d,
                            out.data() +
                                out.offset4(b, g * cout_g + of, 0, 0));
                    };
                    if (pool) {
                        pool->parallelFor(oc1 - oc0, filter_pass);
                    } else {
                        for (int64_t fi = 0; fi < oc1 - oc0; ++fi)
                            filter_pass(fi);
                    }
                    for (const uint64_t s : skipped)
                        stats.macsSkipped += s;
                }
            }
        }
    }
    return out;
}

} // namespace mercury
