#include "core/conv_reuse_engine.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

ConvReuseEngine::ConvReuseEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "ConvReuseEngine")
{
}

ConvReuseEngine::ConvReuseEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "ConvReuseEngine")
{
}

namespace {

/**
 * One filter pass over rows [r0, r1): HIT vectors fetch the owner's dot
 * product from the MCACHE data plane (version slot `ver`), misses
 * compute, MAU rows deposit. Returns the MACs skipped. Rows must be
 * processed in stream order per filter so every HIT's owner (an
 * earlier MAU row) has already deposited — the serial path walks all
 * rows at once, the overlapped path keeps this invariant by chaining
 * a filter's blocks through one SerialExecutor.
 */
uint64_t
filterSegment(DetectionFrontend &fe, const Tensor &rows,
              const std::vector<McacheResult> &row_results,
              const float *w, int ver, int64_t r0, int64_t r1, int64_t d,
              float *out_base)
{
    uint64_t skipped = 0;
    for (int64_t i = r0; i < r1; ++i) {
        const McacheResult &mr = row_results[static_cast<size_t>(i)];
        float val;
        if (mr.outcome == McacheOutcome::Hit &&
            fe.readDataIfValid(mr.entryId, ver, val)) {
            // Reuse the earlier vector's result.
            skipped += static_cast<uint64_t>(d);
        } else {
            const float *row = rows.data() + i * d;
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += row[e] * w[e];
            val = acc;
            if (mr.outcome == McacheOutcome::Mau)
                fe.writeData(mr.entryId, ver, acc);
        }
        out_base[i] += val;
    }
    return skipped;
}

/**
 * Extract the (v, k*k) patch rows of one (image, channel) pass — the
 * Fig. 7a vector extraction shared by the forward detection pass and
 * the weight-gradient replay (which needs the owner patches back).
 */
void
extractChannelPatches(const Tensor &input, const ConvSpec &spec, int64_t b,
                      int64_t c, int64_t oh, int64_t ow, Tensor &rows)
{
    const int64_t k = spec.kernelH;
    int64_t r = 0;
    for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++r) {
            int64_t e = 0;
            for (int64_t ky = 0; ky < k; ++ky) {
                for (int64_t kx = 0; kx < k; ++kx, ++e) {
                    const int64_t iy = y * spec.stride - spec.pad + ky;
                    const int64_t ix = x * spec.stride - spec.pad + kx;
                    const bool inside = iy >= 0 && ix >= 0 &&
                                        iy < input.dim(2) &&
                                        ix < input.dim(3);
                    rows.at2(r, e) =
                        inside ? input.at4(b, c, iy, ix) : 0.0f;
                }
            }
        }
    }
}

/**
 * One backward filter segment over rows [r0, r1): fill the filter's
 * grad-column rows. A row that computed forward multiplies its output
 * gradient into the kernel; a forward-HIT row copies its owner's
 * already-filled row (§III-C2 — the owner is an earlier row of the
 * same pass, so per-filter stream order makes the copy safe). Returns
 * the MACs skipped.
 */
uint64_t
backwardSegment(const std::vector<int64_t> &owner, const float *go,
                const float *w, float *col, int64_t r0, int64_t r1,
                int64_t d)
{
    uint64_t skipped = 0;
    for (int64_t r = r0; r < r1; ++r) {
        float *dst = col + r * d;
        const int64_t o = owner[static_cast<size_t>(r)];
        if (o != r) {
            const float *src = col + o * d;
            std::copy(src, src + d, dst);
            skipped += static_cast<uint64_t>(d);
        } else {
            const float gv = go[r];
            for (int64_t e = 0; e < d; ++e)
                dst[e] = gv * w[e];
        }
    }
    return skipped;
}

/**
 * One weight-gradient group-sum segment over rows [r0, r1) of one
 * filter: fold each row's output gradient into its owner's group
 * accumulator (§III-C2 sum-then-multiply, Eq. 1). An owner slot
 * starts as a bit-exact copy of its own gradient, so singleton groups
 * reproduce the exact per-row contribution; HIT rows accumulate with
 * adds. Stream order per filter guarantees the owner's copy lands
 * before any of its hits fold in. Returns the MACs the filter's
 * deferred outer products will skip.
 */
uint64_t
weightGradSumSegment(const std::vector<int64_t> &owner, const float *go,
                     float *gcol, int64_t r0, int64_t r1, int64_t d)
{
    uint64_t skipped = 0;
    for (int64_t r = r0; r < r1; ++r) {
        const int64_t o = owner[static_cast<size_t>(r)];
        if (o == r) {
            gcol[r] = go[r];
        } else {
            gcol[o] += go[r];
            skipped += static_cast<uint64_t>(d);
        }
    }
    return skipped;
}

} // namespace

Tensor
ConvReuseEngine::forward(const Tensor &input, const Tensor &weight,
                         const Tensor &bias, const ConvSpec &spec,
                         ReuseStats &stats, SignatureRecord *record)
{
    if (input.rank() != 4 || weight.rank() != 4)
        panic("ConvReuseEngine expects rank-4 input and weight");
    const int64_t n = input.dim(0);
    const int64_t oh = spec.outH(input.dim(2));
    const int64_t ow = spec.outW(input.dim(3));
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;

    Tensor out({n, spec.outChannels, oh, ow});
    if (bias.numel()) {
        for (int64_t b = 0; b < n; ++b)
            for (int64_t oc = 0; oc < spec.outChannels; ++oc)
                for (int64_t i = 0; i < v; ++i)
                    out[out.offset4(b, oc, 0, 0) + i] = bias[oc];
    }

    const int versions = frontend_->dataVersions();
    const bool overlapped = frontend_->overlapEnabled();
    ThreadPool *pool = overlapped ? frontend_->workerPool() : nullptr;
    std::vector<McacheResult> row_results(static_cast<size_t>(v));
    if (record)
        record->clear();

    // Weight pointer of one filter pass: filter `of` of group g
    // against input channel c.
    const auto weight_of = [&](int64_t g, int64_t of, int64_t ic) {
        const int64_t oc = g * cout_g + of;
        return weight.data() + ((oc * cin_g + ic) * k) * k;
    };

    // Channel passes in execution order (also the record's pass
    // order, which backwardInput re-walks).
    struct PassId
    {
        int64_t b, g, ic;
    };
    std::vector<PassId> order;
    order.reserve(static_cast<size_t>(n * spec.groups * cin_g));
    for (int64_t b = 0; b < n; ++b)
        for (int64_t g = 0; g < spec.groups; ++g)
            for (int64_t ic = 0; ic < cin_g; ++ic)
                order.push_back({b, g, ic});

    // Double-buffered extraction tensors (cross-channel overlap): the
    // overlapped path extracts and hashes pass p+1 into the other
    // buffer while pass p's trailing filter groups drain. The
    // run-then-filter path reuses one buffer for every pass.
    Tensor bufs[2];
    bufs[0] = Tensor({v, d});
    if (overlapped)
        bufs[1] = Tensor({v, d});
    const auto extract = [&](const PassId &p, Tensor &rows) {
        extractChannelPatches(input, spec, p.b, p.g * cin_g + p.ic, oh,
                              ow, rows);
    };

    stats = ReuseStats{};
    std::unique_ptr<DetectionHashJob> job;
    if (overlapped && !order.empty()) {
        extract(order[0], bufs[0]);
        job = frontend_->beginHashStream(bufs[0],
                                         frontend_.signatureBits());
    }

    for (size_t pi = 0; pi < order.size(); ++pi) {
        const PassId p = order[pi];
        const int64_t b = p.b;
        const int64_t g = p.g;
        const int64_t ic = p.ic;
        Tensor &rows = bufs[overlapped ? (pi & 1) : 0];
        if (!overlapped)
            extract(p, rows); // Fig. 7a extraction, single buffer pace

        DetectionResult det;
        // Filters already finished in the overlapped group 0.
        int64_t oc_done = 0;

        if (overlapped) {
            // Streaming channel pass: the first `versions` filter
            // passes consume detection blocks as they are delivered,
            // each filter on its own serial chain (stream order per
            // filter, filters in parallel), while later blocks still
            // hash on the pool. finishStream's initial cache clear
            // also clears every data version, so group 0 needs no
            // separate invalidateAllData.
            const int64_t group0 = std::min<int64_t>(versions, cout_g);
            std::vector<std::unique_ptr<SerialExecutor>> chains;
            std::vector<uint64_t> chain_skipped(
                static_cast<size_t>(group0), 0);
            for (int64_t of = 0; of < group0; ++of)
                chains.push_back(std::make_unique<SerialExecutor>(pool));

            det = frontend_->finishStream(
                *job,
                [&](const DetectionBlock &blk) {
                    // The block's result pointers die with the
                    // callback; copy into engine-owned storage the
                    // chains can read asynchronously.
                    std::copy(blk.results, blk.results + blk.rows(),
                              row_results.begin() + blk.row0);
                    for (int64_t of = 0; of < group0; ++of) {
                        DetectionFrontend &fe = *frontend_;
                        chains[static_cast<size_t>(of)]->run(
                            [&fe, &rows, &row_results, &chain_skipped,
                             w = weight_of(g, of, ic),
                             base = out.data() +
                                    out.offset4(b, g * cout_g + of, 0, 0),
                             of, r0 = blk.row0, r1 = blk.row1, d] {
                                chain_skipped[static_cast<size_t>(of)] +=
                                    filterSegment(fe, rows, row_results,
                                                  w, static_cast<int>(of),
                                                  r0, r1, d, base);
                            });
                    }
                },
                record);

            // Cross-channel overlap: extract and hash the next pass
            // into the other buffer while this channel's group-0
            // chains (and then its trailing filter groups) drain —
            // hashing touches no MCACHE state, so it is safe beside
            // the data-plane traffic of the in-flight filters.
            std::unique_ptr<DetectionHashJob> next_job;
            if (pi + 1 < order.size()) {
                Tensor &next = bufs[(pi + 1) & 1];
                extract(order[pi + 1], next);
                next_job = frontend_->beginHashStream(
                    next, frontend_.signatureBits());
            }
            for (auto &chain : chains)
                chain->wait();
            for (const uint64_t s : chain_skipped)
                stats.macsSkipped += s;
            oc_done = group0;
            job = std::move(next_job);
        } else {
            // Run-then-filter: one full detection pass, then the
            // filter passes below.
            det = frontend_->detect(rows, frontend_.signatureBits(),
                                    record);
            for (int64_t i = 0; i < v; ++i) {
                row_results[static_cast<size_t>(i)] = {
                    det.hitmap.outcome(i), det.hitmap.entryId(i)};
            }
        }

        const HitMix mix = det.mix();
        stats.mix.vectors += mix.vectors;
        stats.mix.hit += mix.hit;
        stats.mix.mau += mix.mau;
        stats.mix.mnu += mix.mnu;
        ++stats.channelPasses;
        stats.macsTotal += static_cast<uint64_t>(v) *
                           static_cast<uint64_t>(cout_g) *
                           static_cast<uint64_t>(d);

        // Remaining filter passes in groups of `versions` in-flight
        // filters (the multi-version data of Fig. 11). In overlapped
        // mode the filters of a group run in parallel on the pool —
        // each filter is a whole-row-range chain, so the
        // owner-before-hit order within a filter still holds.
        for (int64_t oc0 = oc_done; oc0 < cout_g; oc0 += versions) {
            frontend_->invalidateAllData();
            const int64_t oc1 = std::min<int64_t>(oc0 + versions, cout_g);
            std::vector<uint64_t> skipped(
                static_cast<size_t>(oc1 - oc0), 0);
            const auto filter_pass = [&](int64_t fi) {
                const int64_t of = oc0 + fi;
                skipped[static_cast<size_t>(fi)] = filterSegment(
                    *frontend_, rows, row_results, weight_of(g, of, ic),
                    static_cast<int>(fi), 0, v, d,
                    out.data() + out.offset4(b, g * cout_g + of, 0, 0));
            };
            if (pool) {
                pool->parallelFor(oc1 - oc0, filter_pass);
            } else {
                for (int64_t fi = 0; fi < oc1 - oc0; ++fi)
                    filter_pass(fi);
            }
            for (const uint64_t s : skipped)
                stats.macsSkipped += s;
        }
    }
    return out;
}

Tensor
ConvReuseEngine::backwardInput(const Tensor &gradOut, const Tensor &weight,
                               const ConvSpec &spec, int64_t in_h,
                               int64_t in_w, const SignatureRecord &record,
                               ReuseStats &stats)
{
    if (gradOut.rank() != 4 || weight.rank() != 4)
        panic("ConvReuseEngine expects rank-4 gradient and weight");
    const int64_t n = gradOut.dim(0);
    const int64_t oh = gradOut.dim(2);
    const int64_t ow = gradOut.dim(3);
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    if (record.passCount() != n * spec.groups * cin_g)
        panic("record holds ", record.passCount(),
              " passes, backward needs ", n * spec.groups * cin_g,
              " — was forward captured with the same layer geometry?");
    // Backward keeps as many filters in flight as the forward pass
    // kept data versions, one grad-column buffer per slot.
    const int64_t slots =
        std::max<int64_t>(1, std::min<int64_t>(record.dataVersions(),
                                               cout_g));

    const bool pooled = frontend_->overlapEnabled();
    ThreadPool *pool = pooled ? frontend_->workerPool() : nullptr;

    Tensor grad_in({n, spec.inChannels, in_h, in_w});
    stats = ReuseStats{};

    const auto weight_of = [&](int64_t g, int64_t of, int64_t ic) {
        const int64_t oc = g * cout_g + of;
        return weight.data() + ((oc * cin_g + ic) * k) * k;
    };

    std::vector<int64_t> owner;
    std::vector<std::vector<float>> cols(static_cast<size_t>(slots));
    for (auto &c : cols)
        c.resize(static_cast<size_t>(v * d));

    int64_t pass_idx = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t ic = 0; ic < cin_g; ++ic) {
                const SignatureRecord::Pass &pass =
                    record.pass(pass_idx++);
                if (pass.rows != v)
                    panic("recorded pass holds ", pass.rows,
                          " rows, gradient has ", v);
                record.ownersOf(pass, owner);

                stats.mix.vectors += pass.mix.vectors;
                stats.mix.hit += pass.mix.hit;
                stats.mix.mau += pass.mix.mau;
                stats.mix.mnu += pass.mix.mnu;
                ++stats.channelPasses;
                stats.macsTotal += static_cast<uint64_t>(v) *
                                   static_cast<uint64_t>(cout_g) *
                                   static_cast<uint64_t>(d);

                for (int64_t oc0 = 0; oc0 < cout_g; oc0 += slots) {
                    const int64_t oc1 =
                        std::min<int64_t>(oc0 + slots, cout_g);
                    const int64_t width = oc1 - oc0;
                    std::vector<uint64_t> skipped(
                        static_cast<size_t>(width), 0);

                    if (oc0 == 0 && pool) {
                        // First filter group consumes the replayed
                        // stream (§III-C2): per-filter serial chains
                        // fill their grad columns block by block in
                        // delivery order — every HIT's owner row is in
                        // an earlier (or the same) block, so the copy
                        // source is always filled first.
                        std::vector<std::unique_ptr<SerialExecutor>>
                            chains;
                        for (int64_t fi = 0; fi < width; ++fi)
                            chains.push_back(
                                std::make_unique<SerialExecutor>(pool));
                        frontend_->replayStream(
                            pass, [&](const DetectionBlock &blk) {
                                for (int64_t fi = 0; fi < width; ++fi) {
                                    chains[static_cast<size_t>(fi)]->run(
                                        [&owner, &skipped, &cols,
                                         go = gradOut.data() +
                                              gradOut.offset4(
                                                  b, g * cout_g + oc0 + fi,
                                                  0, 0),
                                         w = weight_of(g, oc0 + fi, ic),
                                         fi, r0 = blk.row0, r1 = blk.row1,
                                         d] {
                                            skipped[static_cast<size_t>(
                                                fi)] +=
                                                backwardSegment(
                                                    owner, go, w,
                                                    cols[static_cast<
                                                             size_t>(fi)]
                                                        .data(),
                                                    r0, r1, d);
                                        });
                                }
                            });
                        for (auto &chain : chains)
                            chain->wait();
                    } else {
                        const auto filter_pass = [&](int64_t fi) {
                            skipped[static_cast<size_t>(fi)] =
                                backwardSegment(
                                    owner,
                                    gradOut.data() +
                                        gradOut.offset4(
                                            b, g * cout_g + oc0 + fi, 0,
                                            0),
                                    weight_of(g, oc0 + fi, ic),
                                    cols[static_cast<size_t>(fi)].data(),
                                    0, v, d);
                        };
                        if (pool) {
                            pool->parallelFor(width, filter_pass);
                        } else {
                            for (int64_t fi = 0; fi < width; ++fi)
                                filter_pass(fi);
                        }
                    }
                    for (const uint64_t s : skipped)
                        stats.macsSkipped += s;

                    // Scatter the group's grad columns in the exact
                    // path's accumulation order — filters ascending,
                    // output positions ascending — so a zero-hit
                    // replay reproduces conv2dBackwardInput bit for
                    // bit.
                    for (int64_t fi = 0; fi < width; ++fi) {
                        const float *col =
                            cols[static_cast<size_t>(fi)].data();
                        int64_t r = 0;
                        for (int64_t y = 0; y < oh; ++y) {
                            for (int64_t x = 0; x < ow; ++x, ++r) {
                                const float *src = col + r * d;
                                int64_t e = 0;
                                for (int64_t ky = 0; ky < k; ++ky) {
                                    for (int64_t kx = 0; kx < k;
                                         ++kx, ++e) {
                                        const int64_t iy =
                                            y * spec.stride - spec.pad +
                                            ky;
                                        const int64_t ix =
                                            x * spec.stride - spec.pad +
                                            kx;
                                        if (iy < 0 || ix < 0 ||
                                            iy >= in_h || ix >= in_w)
                                            continue;
                                        grad_in.at4(b, g * cin_g + ic,
                                                    iy, ix) +=
                                            src[e];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

Tensor
ConvReuseEngine::backwardWeights(const Tensor &input, const Tensor &gradOut,
                                 const ConvSpec &spec,
                                 const SignatureRecord &record,
                                 ReuseStats &stats)
{
    if (input.rank() != 4 || gradOut.rank() != 4)
        panic("ConvReuseEngine expects rank-4 input and gradient");
    const int64_t n = input.dim(0);
    const int64_t oh = gradOut.dim(2);
    const int64_t ow = gradOut.dim(3);
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    if (record.passCount() != n * spec.groups * cin_g)
        panic("record holds ", record.passCount(),
              " passes, weight gradient needs ", n * spec.groups * cin_g,
              " — was forward captured with the same layer geometry?");
    // Like backwardInput: as many filters in flight as the forward
    // pass kept data versions, one group-sum buffer per slot.
    const int64_t slots =
        std::max<int64_t>(1, std::min<int64_t>(record.dataVersions(),
                                               cout_g));

    const bool pooled = frontend_->overlapEnabled();
    ThreadPool *pool = pooled ? frontend_->workerPool() : nullptr;

    Tensor grad_w({spec.outChannels, cin_g, k, k});
    stats = ReuseStats{};

    Tensor rows({v, d});
    std::vector<int64_t> owner;
    std::vector<std::vector<float>> gcols(static_cast<size_t>(slots));
    for (auto &c : gcols)
        c.resize(static_cast<size_t>(v));

    int64_t pass_idx = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t ic = 0; ic < cin_g; ++ic) {
                const SignatureRecord::Pass &pass =
                    record.pass(pass_idx++);
                if (pass.rows != v)
                    panic("recorded pass holds ", pass.rows,
                          " rows, gradient has ", v);
                record.ownersOf(pass, owner);
                // The owners' patches are the single representative
                // each hit-group multiplies through.
                extractChannelPatches(input, spec, b, g * cin_g + ic,
                                      oh, ow, rows);

                stats.mix.vectors += pass.mix.vectors;
                stats.mix.hit += pass.mix.hit;
                stats.mix.mau += pass.mix.mau;
                stats.mix.mnu += pass.mix.mnu;
                ++stats.channelPasses;
                stats.macsTotal += static_cast<uint64_t>(v) *
                                   static_cast<uint64_t>(cout_g) *
                                   static_cast<uint64_t>(d);

                for (int64_t oc0 = 0; oc0 < cout_g; oc0 += slots) {
                    const int64_t oc1 =
                        std::min<int64_t>(oc0 + slots, cout_g);
                    const int64_t width = oc1 - oc0;
                    std::vector<uint64_t> skipped(
                        static_cast<size_t>(width), 0);

                    // Phase 1 — group sums: fold every row's output
                    // gradient into its owner's accumulator, per
                    // filter.
                    if (oc0 == 0 && pool) {
                        // First filter group consumes the replayed
                        // stream (§III-C2): per-filter serial chains
                        // fold blocks in delivery order — every HIT's
                        // owner is in an earlier (or the same) block,
                        // so the owner's copy always lands first.
                        std::vector<std::unique_ptr<SerialExecutor>>
                            chains;
                        for (int64_t fi = 0; fi < width; ++fi)
                            chains.push_back(
                                std::make_unique<SerialExecutor>(pool));
                        frontend_->replayStream(
                            pass, [&](const DetectionBlock &blk) {
                                for (int64_t fi = 0; fi < width; ++fi) {
                                    chains[static_cast<size_t>(fi)]->run(
                                        [&owner, &skipped, &gcols,
                                         go = gradOut.data() +
                                              gradOut.offset4(
                                                  b, g * cout_g + oc0 + fi,
                                                  0, 0),
                                         fi, r0 = blk.row0, r1 = blk.row1,
                                         d] {
                                            skipped[static_cast<size_t>(
                                                fi)] +=
                                                weightGradSumSegment(
                                                    owner, go,
                                                    gcols[static_cast<
                                                              size_t>(fi)]
                                                        .data(),
                                                    r0, r1, d);
                                        });
                                }
                            });
                        for (auto &chain : chains)
                            chain->wait();
                    } else {
                        const auto sum_pass = [&](int64_t fi) {
                            skipped[static_cast<size_t>(fi)] =
                                weightGradSumSegment(
                                    owner,
                                    gradOut.data() +
                                        gradOut.offset4(
                                            b, g * cout_g + oc0 + fi, 0,
                                            0),
                                    gcols[static_cast<size_t>(fi)].data(),
                                    0, v, d);
                        };
                        if (pool) {
                            pool->parallelFor(width, sum_pass);
                        } else {
                            for (int64_t fi = 0; fi < width; ++fi)
                                sum_pass(fi);
                        }
                    }
                    for (const uint64_t s : skipped)
                        stats.macsSkipped += s;

                    // Phase 2 — one multiply per group: the owner's
                    // patch times its summed gradient, owners
                    // ascending, so a zero-hit replay accumulates
                    // each weight element in conv2dBackwardWeight's
                    // (batch, output-position) order. Filters write
                    // disjoint grad_w rows and may run in parallel.
                    const auto mul_pass = [&](int64_t fi) {
                        const int64_t oc = g * cout_g + oc0 + fi;
                        float *gw =
                            grad_w.data() + ((oc * cin_g + ic) * k) * k;
                        const float *gcol =
                            gcols[static_cast<size_t>(fi)].data();
                        for (int64_t r = 0; r < v; ++r) {
                            if (owner[static_cast<size_t>(r)] != r)
                                continue;
                            const float gv = gcol[r];
                            const float *patch = rows.data() + r * d;
                            for (int64_t e = 0; e < d; ++e)
                                gw[e] += gv * patch[e];
                        }
                    };
                    if (pool) {
                        pool->parallelFor(width, mul_pass);
                    } else {
                        for (int64_t fi = 0; fi < width; ++fi)
                            mul_pass(fi);
                    }
                }
            }
        }
    }
    return grad_w;
}

} // namespace mercury
