#include "core/conv_reuse_engine.hpp"

#include "util/logging.hpp"

namespace mercury {

ConvReuseEngine::ConvReuseEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "ConvReuseEngine")
{
}

ConvReuseEngine::ConvReuseEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "ConvReuseEngine")
{
}

Tensor
ConvReuseEngine::forward(const Tensor &input, const Tensor &weight,
                         const Tensor &bias, const ConvSpec &spec,
                         ReuseStats &stats)
{
    if (input.rank() != 4 || weight.rank() != 4)
        panic("ConvReuseEngine expects rank-4 input and weight");
    const int64_t n = input.dim(0);
    const int64_t oh = spec.outH(input.dim(2));
    const int64_t ow = spec.outW(input.dim(3));
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;

    Tensor out({n, spec.outChannels, oh, ow});
    if (bias.numel()) {
        for (int64_t b = 0; b < n; ++b)
            for (int64_t oc = 0; oc < spec.outChannels; ++oc)
                for (int64_t i = 0; i < v; ++i)
                    out[out.offset4(b, oc, 0, 0) + i] = bias[oc];
    }

    // Channel-at-a-time extraction buffer.
    Tensor rows({v, d});
    const int versions = frontend_->dataVersions();

    stats = ReuseStats{};
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t ic = 0; ic < cin_g; ++ic) {
                const int64_t c = g * cin_g + ic;
                // Extract this channel's input vectors (Fig. 7a).
                int64_t r = 0;
                for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x, ++r) {
                        int64_t e = 0;
                        for (int64_t ky = 0; ky < k; ++ky) {
                            for (int64_t kx = 0; kx < k; ++kx, ++e) {
                                const int64_t iy =
                                    y * spec.stride - spec.pad + ky;
                                const int64_t ix =
                                    x * spec.stride - spec.pad + kx;
                                const bool inside =
                                    iy >= 0 && ix >= 0 &&
                                    iy < input.dim(2) && ix < input.dim(3);
                                rows.at2(r, e) =
                                    inside ? input.at4(b, c, iy, ix)
                                           : 0.0f;
                            }
                        }
                    }
                }

                // Detection pass: signatures, MCACHE tags, hitmap —
                // one pipeline run per (image, channel).
                DetectionResult det =
                    frontend_->detect(rows, frontend_.signatureBits());
                const HitMix mix = det.mix();
                stats.mix.vectors += mix.vectors;
                stats.mix.hit += mix.hit;
                stats.mix.mau += mix.mau;
                stats.mix.mnu += mix.mnu;
                ++stats.channelPasses;
                stats.macsTotal += static_cast<uint64_t>(v) *
                                   static_cast<uint64_t>(cout_g) *
                                   static_cast<uint64_t>(d);

                // Filter passes in groups of `versions` in-flight
                // filters (the multi-version data of Fig. 11).
                for (int64_t oc0 = 0; oc0 < cout_g; oc0 += versions) {
                    frontend_->invalidateAllData();
                    const int64_t oc1 =
                        std::min<int64_t>(oc0 + versions, cout_g);
                    for (int64_t of = oc0; of < oc1; ++of) {
                        const int64_t oc = g * cout_g + of;
                        const int ver = static_cast<int>(of - oc0);
                        const float *w =
                            weight.data() +
                            ((oc * cin_g + ic) * k) * k;
                        for (int64_t i = 0; i < v; ++i) {
                            float val;
                            const McacheOutcome outc =
                                det.hitmap.outcome(i);
                            const int64_t id = det.hitmap.entryId(i);
                            if (outc == McacheOutcome::Hit &&
                                frontend_->dataValid(id, ver)) {
                                // Reuse the earlier vector's result.
                                val = frontend_->readData(id, ver);
                                stats.macsSkipped +=
                                    static_cast<uint64_t>(d);
                            } else {
                                const float *row =
                                    rows.data() + i * d;
                                float acc = 0.0f;
                                for (int64_t e = 0; e < d; ++e)
                                    acc += row[e] * w[e];
                                val = acc;
                                if (outc == McacheOutcome::Mau)
                                    frontend_->writeData(id, ver, acc);
                            }
                            out[out.offset4(b, oc, 0, 0) + i] += val;
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace mercury
