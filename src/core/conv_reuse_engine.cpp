#include "core/conv_reuse_engine.hpp"

#include <algorithm>
#include <optional>

#include "core/kernels/kernels.hpp"
#include "core/span_batcher.hpp"
#include "util/logging.hpp"

namespace mercury {

ConvReuseEngine::ConvReuseEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "ConvReuseEngine")
{
}

ConvReuseEngine::ConvReuseEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "ConvReuseEngine")
{
}

namespace {

/**
 * One filter pass over rows [r0, r1): HIT vectors fetch the owner's
 * dot product from the runtime's arena-backed data plane (version
 * slot `ver`), misses compute, MAU rows deposit. Returns the MACs
 * skipped. The runtime guarantees rows arrive in stream order per
 * filter, so every HIT's owner (an earlier MAU row) has already
 * deposited; each filter owns its version slot exclusively for the
 * whole channel pass, which is what makes the plane's unsynchronized
 * access race-free (see pass_arena.hpp) — the per-shard MCACHE locks
 * this path used to take millions of times per layer are gone.
 */
uint64_t
filterSegment(PassDataPlane &plane, const Tensor &rows,
              const std::vector<McacheResult> &row_results,
              const float *w, int ver, int64_t r0, int64_t r1, int64_t d,
              float *out_base)
{
    uint64_t skipped = 0;
    for (int64_t i = r0; i < r1; ++i) {
        const McacheResult &mr = row_results[static_cast<size_t>(i)];
        // Hide the next row's data-plane latency behind this row's
        // dot product (entry ids jump around the arena, so the
        // hardware stride prefetcher cannot see this pattern).
        if (i + 1 < r1)
            plane.prefetch(row_results[static_cast<size_t>(i + 1)].entryId,
                           ver);
        float val;
        if (mr.outcome == McacheOutcome::Hit &&
            plane.readIfValid(mr.entryId, ver, val)) {
            // Reuse the earlier vector's result.
            skipped += static_cast<uint64_t>(d);
        } else {
            const float *row = rows.data() + i * d;
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += row[e] * w[e];
            val = acc;
            if (mr.outcome == McacheOutcome::Mau)
                plane.write(mr.entryId, ver, acc);
        }
        out_base[i] += val;
    }
    return skipped;
}

/**
 * One backward filter segment over rows [r0, r1): fill the filter's
 * grad-column rows. A row that computed forward multiplies its output
 * gradient into the kernel; a forward-HIT row copies its owner's
 * already-filled row (§III-C2 — the owner is an earlier row of the
 * same pass, so per-filter stream order makes the copy safe). Returns
 * the MACs skipped.
 */
uint64_t
backwardSegment(const std::vector<int64_t> &owner, const float *go,
                const float *w, float *col, int64_t r0, int64_t r1,
                int64_t d)
{
    const kernels::KernelOps &k = kernels::ops();
    uint64_t skipped = 0;
    int64_t r = r0;
    while (r < r1) {
        const int64_t o = owner[static_cast<size_t>(r)];
        if (o == r) {
            k.scaleSpan(col + r * d, go[r], w, d);
            ++r;
            continue;
        }
        // Coalesce adjacent HIT rows whose owners are also adjacent
        // into one span copy: destination rows r.. and source rows
        // o.. are each contiguous in the column buffer, and the
        // owner run ends before row r (owners are computed rows, so
        // the index sets are disjoint and o + len <= r) — the ranges
        // never overlap.
        int64_t e = r + 1;
        while (e < r1 && owner[static_cast<size_t>(e)] != e &&
               owner[static_cast<size_t>(e)] ==
                   owner[static_cast<size_t>(e - 1)] + 1)
            ++e;
        k.copySpan(col + r * d, col + o * d, (e - r) * d);
        skipped += static_cast<uint64_t>(e - r) * static_cast<uint64_t>(d);
        r = e;
    }
    return skipped;
}

/**
 * One weight-gradient group-sum segment over rows [r0, r1) of one
 * filter: fold each row's output gradient into its owner's group
 * accumulator (§III-C2 sum-then-multiply, Eq. 1). An owner slot
 * starts as a bit-exact copy of its own gradient, so singleton groups
 * reproduce the exact per-row contribution; HIT rows accumulate with
 * adds. Stream order per filter guarantees the owner's copy lands
 * before any of its hits fold in. Returns the MACs the filter's
 * deferred outer products will skip.
 */
uint64_t
weightGradSumSegment(const std::vector<int64_t> &owner, const float *go,
                     float *gcol, int64_t r0, int64_t r1, int64_t d)
{
    uint64_t skipped = 0;
    for (int64_t r = r0; r < r1; ++r) {
        const int64_t o = owner[static_cast<size_t>(r)];
        if (o == r) {
            gcol[r] = go[r];
        } else {
            gcol[o] += go[r];
            skipped += static_cast<uint64_t>(d);
        }
    }
    return skipped;
}

} // namespace

// Declared in the header (shared with the planner's cross-layer
// prefetch and the pipeline's fused extraction): the Fig. 7a
// per-channel vector extraction, routed through the extractPatches
// kernel (span-clipped copies — bit-identical to the elementwise
// loop it replaced, since extraction moves values without arithmetic).
void
extractChannelPatchRows(const Tensor &input, const ConvSpec &spec,
                        int64_t b, int64_t c, int64_t ow, int64_t r0,
                        int64_t r1, Tensor &rows)
{
    kernels::ops().extractPatches(
        input.data() + input.offset4(b, c, 0, 0), input.dim(2),
        input.dim(3), ow, spec.stride, spec.pad, spec.kernelH, r0, r1,
        rows.data());
}

void
extractChannelPatches(const Tensor &input, const ConvSpec &spec, int64_t b,
                      int64_t c, int64_t oh, int64_t ow, Tensor &rows)
{
    extractChannelPatchRows(input, spec, b, c, ow, 0, oh * ow, rows);
}

Tensor
ConvReuseEngine::forward(const Tensor &input, const Tensor &weight,
                         const Tensor &bias, const ConvSpec &spec,
                         ReuseStats &stats, SignatureRecord *record,
                         ConvPlanSlot *plan)
{
    if (input.rank() != 4 || weight.rank() != 4)
        panic("ConvReuseEngine expects rank-4 input and weight");
    const int64_t n = input.dim(0);
    const int64_t oh = spec.outH(input.dim(2));
    const int64_t ow = spec.outW(input.dim(3));
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;

    Tensor out({n, spec.outChannels, oh, ow});
    if (bias.numel()) {
        for (int64_t b = 0; b < n; ++b)
            for (int64_t oc = 0; oc < spec.outChannels; ++oc)
                for (int64_t i = 0; i < v; ++i)
                    out[out.offset4(b, oc, 0, 0) + i] = bias[oc];
    }

    // A bound plan slot provides the persistent runtime, the prebuilt
    // pass order, and the preallocated double buffer; a slot whose
    // compiled geometry does not match this call runs unplanned (the
    // schedule is the only thing planning changes).
    if (plan && (!plan->runtime || !plan->plan || plan->plan->rows != v ||
                 plan->plan->vecDim != d ||
                 static_cast<int64_t>(plan->order.size()) !=
                     n * spec.groups * cin_g))
        plan = nullptr;

    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    // Every channel pass of this layer has v rows, so the overlap
    // decision (Auto resolves from threads x rows) is one call,
    // matching what the runtime will resolve per pass internally.
    const bool overlapped = rt.overlappedFor(v);
    if (record) {
        record->clear();
        if (plan)
            record->reservePasses(
                static_cast<int64_t>(plan->order.size()));
    }

    // HIT forwarding runs on the runtime's arena-backed data plane
    // instead of the locked MCACHE data plane: same validity
    // semantics, but plain unsynchronized access — the scheduler's
    // version-slot discipline already guarantees exclusive cells (see
    // pass_arena.hpp). The plane is host scratch memory, not a model
    // of the MCACHE's version SRAM (the cycle model still charges the
    // Fig. 11 version constraint), so it affords one slot PER FILTER:
    // forwarding only ever reads a value the same filter deposited,
    // unique slots make that true with every filter of a channel pass
    // in flight at once — no filter groups, no between-group
    // invalidation barriers.
    PassDataPlane &plane = rt.dataPlane();
    plane.configure(frontend_->entries(), static_cast<int>(cout_g));

    // Weight pointer of one filter pass: filter `of` of group g
    // against input channel c.
    const auto weight_of = [&](int64_t g, int64_t of, int64_t ic) {
        const int64_t oc = g * cout_g + of;
        return weight.data() + ((oc * cin_g + ic) * k) * k;
    };

    // Channel passes in execution order (also the record's pass
    // order, which the backward replays re-walk). Grouped / depthwise
    // convolutions enumerate (group, channel-within-group) pairs; the
    // per-pass descriptor below is the same for every grouping. A
    // plan slot carries the order prebuilt.
    using PassId = ConvPlanSlot::PassId;
    std::vector<PassId> local_order;
    if (!plan) {
        local_order.reserve(static_cast<size_t>(n * spec.groups * cin_g));
        for (int64_t b = 0; b < n; ++b)
            for (int64_t g = 0; g < spec.groups; ++g)
                for (int64_t ic = 0; ic < cin_g; ++ic)
                    local_order.push_back({b, g, ic});
    }
    const std::vector<PassId> &order = plan ? plan->order : local_order;

    // Double-buffered extraction tensors (cross-channel overlap): the
    // overlapped path extracts and hashes pass p+1 into the other
    // buffer while pass p's trailing filter groups drain. The
    // run-then-filter path reuses one buffer for every pass. A plan
    // slot carries both buffers preallocated.
    Tensor local_bufs[2];
    Tensor *bufs = plan ? plan->bufs : local_bufs;
    if (!plan) {
        bufs[0] = Tensor({v, d});
        if (overlapped)
            bufs[1] = Tensor({v, d});
    }
    // Single-touch fusion: a pass's extraction rides the detection
    // pipeline as a RowFiller — each projection block extracts its
    // row range immediately before hashing it, so a block's patches
    // are still cache-hot when the RPQ projection reads them (and the
    // filler fans out with the hash blocks instead of running as a
    // serial pre-pass on the driving thread).
    const auto filler = [&input, &spec, cin_g, ow](const PassId &p,
                                                   Tensor &rows) {
        return RowFiller([&input, &spec, &rows, cin_g, ow,
                          p](int64_t r0, int64_t r1) {
            extractChannelPatchRows(input, spec, p.b, p.g * cin_g + p.ic,
                                    ow, r0, r1, rows);
        });
    };

    stats = ReuseStats{};
    std::unique_ptr<DetectionHashJob> job;
    const Tensor *rows0 = &bufs[0];
    if (overlapped && !order.empty()) {
        if (plan && plan->prefetched && plan->prefetched->rowCount() == v &&
            plan->prefetched->vectorDim() == d &&
            plan->prefetched->signatureBits() ==
                frontend_.signatureBits()) {
            // Cross-layer overlap (planned path): the predecessor
            // layer already extracted and hashed this layer's first
            // channel pass while its trailing filter ranges drained —
            // consume the in-flight job as pass 0. The rows it hashed
            // live in the slot's prefetch buffer.
            job = std::move(plan->prefetched);
            rows0 = &plan->prefetchRows;
        } else {
            if (plan)
                plan->prefetched.reset();
            job = frontend_->beginHashStream(bufs[0],
                                             frontend_.signatureBits(),
                                             filler(order[0], bufs[0]));
        }
    }

    for (size_t pi = 0; pi < order.size(); ++pi) {
        const PassId p = order[pi];
        // Serial path: single buffer, filled blockwise by the fused
        // filler as the pass hashes it (no eager extraction pass).
        const Tensor *rows_p =
            overlapped ? (pi == 0 ? rows0 : &bufs[pi & 1]) : &bufs[0];
        const Tensor &rows = *rows_p;

        // Pass-start clear of the data plane (the MCACHE tag plane is
        // cleared by the detection pass itself). Driving thread, no
        // segments in flight yet — quiescent by construction.
        plane.invalidateAll();

        // One FilterPassSet per channel pass: cout_g filter passes,
        // ALL in flight (each filter owns data-plane slot f outright,
        // so no slot is ever recycled within a pass — the runtime
        // streams the whole pass through its chains with no group
        // barriers).
        const std::vector<McacheResult> &row_results = rt.rowResults();
        ReuseRuntime::FilterPassSet set;
        set.rows = v;
        set.filters = cout_g;
        set.inFlight = cout_g;
        set.segment = [&, p](int64_t f, int64_t r0, int64_t r1) {
            return filterSegment(
                plane, rows, row_results, weight_of(p.g, f, p.ic),
                static_cast<int>(f), r0, r1, d,
                out.data() + out.offset4(p.b, p.g * cout_g + f, 0, 0));
        };
        // Cross-channel overlap: begin hashing the next pass into the
        // other buffer while this channel's chains drain — the fused
        // filler extracts each block right before it hashes, on the
        // pool, so the driving thread no longer pays a serial
        // whole-channel extraction inside the overlap window. Hashing
        // touches no MCACHE state, so it is safe beside the
        // data-plane traffic of the in-flight filters.
        std::unique_ptr<DetectionHashJob> next_job;
        if (overlapped) {
            set.onStreamDelivered = [&] {
                if (pi + 1 < order.size()) {
                    Tensor &next = bufs[(pi + 1) & 1];
                    next_job = frontend_->beginHashStream(
                        next, frontend_.signatureBits(),
                        filler(order[pi + 1], next));
                }
            };
        }
        // Cross-layer overlap (planned path, producing side): on the
        // pass that completes output channel 0 of image 0 — (image 0,
        // group 0, last input channel) — the first drained chain
        // covers filter 0, so the successor layer's first channel
        // pass can extract and hash while this pass's remaining
        // chains (and all later images') still drain.
        if (plan && plan->prefetchNext &&
            static_cast<int64_t>(pi) == plan->prefetchAfterPass) {
            set.onChainDrained = [&](int64_t f0, int64_t f1) {
                (void)f1;
                if (f0 == 0)
                    plan->prefetchNext(out);
            };
        }

        rt.runFilterPasses(
            overlapped
                ? ReuseRuntime::StreamSource::hashed(*job, record)
                : ReuseRuntime::StreamSource::live(rows, record,
                                                   filler(p, bufs[0])),
            set, stats);
        if (overlapped)
            job = std::move(next_job);

        stats.macsTotal += static_cast<uint64_t>(v) *
                           static_cast<uint64_t>(cout_g) *
                           static_cast<uint64_t>(d);
    }
    return out;
}

Tensor
ConvReuseEngine::backwardInput(const Tensor &gradOut, const Tensor &weight,
                               const ConvSpec &spec, int64_t in_h,
                               int64_t in_w, const SignatureRecord &record,
                               ReuseStats &stats, ConvPlanSlot *plan)
{
    if (gradOut.rank() != 4 || weight.rank() != 4)
        panic("ConvReuseEngine expects rank-4 gradient and weight");
    const int64_t n = gradOut.dim(0);
    const int64_t oh = gradOut.dim(2);
    const int64_t ow = gradOut.dim(3);
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    if (record.passCount() != n * spec.groups * cin_g)
        panic("record holds ", record.passCount(),
              " passes, backward needs ", n * spec.groups * cin_g,
              " — was forward captured with the same layer geometry?");
    // Backward keeps as many filters in flight as the forward pass
    // kept data versions, one grad-column buffer per slot.
    const int64_t slots =
        std::max<int64_t>(1, std::min<int64_t>(record.dataVersions(),
                                               cout_g));

    // Planned execution: persistent runtime plus preallocated
    // grad-column slots and owner scratch (bind time sized them to
    // this geometry; anything off runs unplanned).
    if (plan && (!plan->runtime || !plan->plan || plan->plan->rows != v ||
                 plan->plan->vecDim != d ||
                 static_cast<int64_t>(plan->cols.size()) != slots ||
                 (slots > 0 && plan->cols[0].size() !=
                                   static_cast<size_t>(v * d))))
        plan = nullptr;

    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    Tensor grad_in({n, spec.inChannels, in_h, in_w});
    stats = ReuseStats{};

    const auto weight_of = [&](int64_t g, int64_t of, int64_t ic) {
        const int64_t oc = g * cout_g + of;
        return weight.data() + ((oc * cin_g + ic) * k) * k;
    };

    std::vector<int64_t> local_owner;
    std::vector<int64_t> &owner = plan ? plan->owner : local_owner;
    std::vector<std::vector<float>> local_cols;
    if (!plan) {
        local_cols.resize(static_cast<size_t>(slots));
        for (auto &c : local_cols)
            c.resize(static_cast<size_t>(v * d));
    }
    std::vector<std::vector<float>> &cols = plan ? plan->cols : local_cols;

    int64_t pass_idx = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t ic = 0; ic < cin_g; ++ic) {
                const SignatureRecord::Pass &pass =
                    record.pass(pass_idx++);
                if (pass.rows != v)
                    panic("recorded pass holds ", pass.rows,
                          " rows, gradient has ", v);
                record.ownersOf(pass, owner);

                stats.macsTotal += static_cast<uint64_t>(v) *
                                   static_cast<uint64_t>(cout_g) *
                                   static_cast<uint64_t>(d);

                // One replayed FilterPassSet per channel pass
                // (§III-C2): the grad-column fills consume the
                // stream — every HIT's owner row is in an earlier
                // (or the same) block, so per-filter stream order
                // makes the copy source always filled first.
                ReuseRuntime::FilterPassSet set;
                set.rows = v;
                set.filters = cout_g;
                set.inFlight = slots;
                set.segment = [&](int64_t f, int64_t r0, int64_t r1) {
                    return backwardSegment(
                        owner,
                        gradOut.data() +
                            gradOut.offset4(b, g * cout_g + f, 0, 0),
                        weight_of(g, f, ic),
                        cols[static_cast<size_t>(f % slots)].data(), r0,
                        r1, d);
                };
                // Scatter the group's grad columns in the exact
                // path's accumulation order — filters ascending,
                // output positions ascending — so a zero-hit replay
                // reproduces conv2dBackwardInput bit for bit. Each
                // kernel row clips to one contiguous in-bounds
                // column window (span_batcher.hpp), so the scatter
                // runs as one addSpan per (position, kernel row) —
                // elementwise adds, each cell accumulated in the
                // same order as the per-element loop it replaces.
                //
                // The scatter fans out in BANDS of input rows: every
                // gradient cell lives on exactly one input row iy, so
                // a worker that owns iy in [a, z) executes precisely
                // the adds landing in its band — writes are disjoint
                // across workers, and each cell still receives its
                // adds in (f, y, x, ky) order (filtering a sequence
                // never reorders it), keeping the result bit-exact
                // regardless of scheduling.
                set.afterGroup = [&](int64_t f0, int64_t f1) {
                    const kernels::KernelOps &kn = kernels::ops();
                    float *gin_base =
                        grad_in.data() +
                        grad_in.offset4(b, g * cin_g + ic, 0, 0);
                    ThreadPool *sp = rt.pool();
                    const int64_t nbands =
                        sp ? std::min<int64_t>(
                                 in_h,
                                 static_cast<int64_t>(sp->workers()) + 1)
                           : 1;
                    rt.parallelChains(nbands, [&](int64_t bi) {
                        const int64_t a = bi * in_h / nbands;
                        const int64_t z = (bi + 1) * in_h / nbands;
                        for (int64_t f = f0; f < f1; ++f) {
                            const float *col =
                                cols[static_cast<size_t>(f % slots)]
                                    .data();
                            int64_t r = 0;
                            for (int64_t y = 0; y < oh; ++y) {
                                const int64_t iy0 =
                                    y * spec.stride - spec.pad;
                                if (iy0 >= z || iy0 + k <= a) {
                                    r += ow; // window misses the band
                                    continue;
                                }
                                for (int64_t x = 0; x < ow; ++x, ++r) {
                                    const float *src = col + r * d;
                                    const KxSpan kxs = kxSpan(
                                        x, spec.stride, spec.pad, k,
                                        in_w);
                                    if (kxs.kx0 >= kxs.kx1)
                                        continue;
                                    const int64_t ix0 =
                                        x * spec.stride - spec.pad +
                                        kxs.kx0;
                                    for (int64_t ky = 0; ky < k; ++ky) {
                                        const int64_t iy = iy0 + ky;
                                        if (iy < a || iy >= z)
                                            continue;
                                        kn.addSpan(
                                            gin_base + iy * in_w + ix0,
                                            src + ky * k + kxs.kx0,
                                            kxs.kx1 - kxs.kx0);
                                    }
                                }
                            }
                        }
                    });
                };

                rt.runFilterPasses(
                    ReuseRuntime::StreamSource::replay(pass), set,
                    stats);
            }
        }
    }
    return grad_in;
}

Tensor
ConvReuseEngine::backwardWeights(const Tensor &input, const Tensor &gradOut,
                                 const ConvSpec &spec,
                                 const SignatureRecord &record,
                                 ReuseStats &stats, ConvPlanSlot *plan)
{
    if (input.rank() != 4 || gradOut.rank() != 4)
        panic("ConvReuseEngine expects rank-4 input and gradient");
    const int64_t n = input.dim(0);
    const int64_t oh = gradOut.dim(2);
    const int64_t ow = gradOut.dim(3);
    const int64_t k = spec.kernelH;
    if (spec.kernelW != k)
        panic("ConvReuseEngine expects square kernels");
    const int64_t d = k * k;
    const int64_t v = oh * ow;
    const int64_t cin_g = spec.inChannels / spec.groups;
    const int64_t cout_g = spec.outChannels / spec.groups;
    if (record.passCount() != n * spec.groups * cin_g)
        panic("record holds ", record.passCount(),
              " passes, weight gradient needs ", n * spec.groups * cin_g,
              " — was forward captured with the same layer geometry?");
    // Like backwardInput: as many filters in flight as the forward
    // pass kept data versions, one group-sum buffer per slot.
    const int64_t slots =
        std::max<int64_t>(1, std::min<int64_t>(record.dataVersions(),
                                               cout_g));

    // Planned execution: persistent runtime plus the preallocated
    // patch buffer and group-sum slots (see backwardInput).
    if (plan && (!plan->runtime || !plan->plan || plan->plan->rows != v ||
                 plan->plan->vecDim != d ||
                 plan->dwRows.numel() != v * d ||
                 static_cast<int64_t>(plan->gcols.size()) != slots ||
                 (slots > 0 &&
                  plan->gcols[0].size() != static_cast<size_t>(v))))
        plan = nullptr;

    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    Tensor grad_w({spec.outChannels, cin_g, k, k});
    stats = ReuseStats{};

    Tensor local_rows;
    if (!plan)
        local_rows = Tensor({v, d});
    Tensor &rows = plan ? plan->dwRows : local_rows;
    std::vector<int64_t> local_owner;
    std::vector<int64_t> &owner = plan ? plan->owner : local_owner;
    std::vector<std::vector<float>> local_gcols;
    if (!plan) {
        local_gcols.resize(static_cast<size_t>(slots));
        for (auto &c : local_gcols)
            c.resize(static_cast<size_t>(v));
    }
    std::vector<std::vector<float>> &gcols =
        plan ? plan->gcols : local_gcols;

    int64_t pass_idx = 0;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < spec.groups; ++g) {
            for (int64_t ic = 0; ic < cin_g; ++ic) {
                const SignatureRecord::Pass &pass =
                    record.pass(pass_idx++);
                if (pass.rows != v)
                    panic("recorded pass holds ", pass.rows,
                          " rows, gradient has ", v);
                record.ownersOf(pass, owner);
                // The owners' patches are the single representative
                // each hit-group multiplies through. Replay streams
                // never hash, so there is no pipeline to fuse the
                // extraction into — instead it fans out over the
                // worker pool in disjoint row bands (pure span
                // copies, bit-identical in any order) rather than
                // running as a serial pre-pass on the driving thread.
                if (ThreadPool *xp = frontend_->workerPool()) {
                    const int64_t nb = std::min<int64_t>(
                        v, static_cast<int64_t>(xp->workers()) + 1);
                    xp->parallelFor(nb, [&](int64_t bi) {
                        extractChannelPatchRows(
                            input, spec, b, g * cin_g + ic, ow,
                            bi * v / nb, (bi + 1) * v / nb, rows);
                    });
                } else {
                    extractChannelPatches(input, spec, b,
                                          g * cin_g + ic, oh, ow, rows);
                }

                stats.macsTotal += static_cast<uint64_t>(v) *
                                   static_cast<uint64_t>(cout_g) *
                                   static_cast<uint64_t>(d);

                // One replayed FilterPassSet per channel pass
                // (§III-C2 sum-then-multiply, Eq. 1): the segments
                // fold each row's output gradient into its owner's
                // group accumulator on the stream; afterGroup then
                // runs one multiply per group through the owner's
                // patch, owners ascending, so a zero-hit replay
                // accumulates each weight element in
                // conv2dBackwardWeight's (batch, output-position)
                // order. Filters write disjoint grad_w rows and fan
                // out in parallel.
                ReuseRuntime::FilterPassSet set;
                set.rows = v;
                set.filters = cout_g;
                set.inFlight = slots;
                set.segment = [&](int64_t f, int64_t r0, int64_t r1) {
                    return weightGradSumSegment(
                        owner,
                        gradOut.data() +
                            gradOut.offset4(b, g * cout_g + f, 0, 0),
                        gcols[static_cast<size_t>(f % slots)].data(), r0,
                        r1, d);
                };
                set.afterGroup = [&](int64_t f0, int64_t f1) {
                    const kernels::KernelOps &kn = kernels::ops();
                    rt.parallelChains(f1 - f0, [&](int64_t i) {
                        const int64_t f = f0 + i;
                        const int64_t oc = g * cout_g + f;
                        float *gw =
                            grad_w.data() + ((oc * cin_g + ic) * k) * k;
                        const float *gcol =
                            gcols[static_cast<size_t>(f % slots)].data();
                        for (int64_t r = 0; r < v; ++r) {
                            if (owner[static_cast<size_t>(r)] != r)
                                continue;
                            const float gv = gcol[r];
                            kn.axpy(gw, gv, rows.data() + r * d, d);
                        }
                    });
                };

                rt.runFilterPasses(
                    ReuseRuntime::StreamSource::replay(pass), set,
                    stats);
            }
        }
    }
    return grad_w;
}

} // namespace mercury
