#include "core/signature.hpp"

#include "util/logging.hpp"

namespace mercury {

Signature::Signature(int bits)
    : bits_(bits),
      words_(static_cast<size_t>(wordsFor(bits)), 0)
{
    if (bits < 0)
        panic("negative signature length ", bits);
}

void
Signature::checkIndex(int i) const
{
    if (i < 0 || i >= bits_)
        panic("signature bit index ", i, " out of range for ", bits_,
              " bits");
}

bool
Signature::bit(int i) const
{
    checkIndex(i);
    return (words_[static_cast<size_t>(i / 64)] >> (i % 64)) & 1;
}

void
Signature::setBit(int i, bool value)
{
    checkIndex(i);
    const uint64_t mask = 1ull << (i % 64);
    if (value)
        words_[static_cast<size_t>(i / 64)] |= mask;
    else
        words_[static_cast<size_t>(i / 64)] &= ~mask;
}

void
Signature::appendBit(bool value)
{
    ++bits_;
    if (wordsFor(bits_) > static_cast<int>(words_.size()))
        words_.push_back(0);
    setBit(bits_ - 1, value);
}

Signature
Signature::prefix(int bits) const
{
    if (bits > bits_)
        panic("prefix of ", bits, " bits from a ", bits_,
              "-bit signature");
    Signature out(bits);
    for (int i = 0; i < bits; ++i)
        out.setBit(i, bit(i));
    return out;
}

bool
Signature::operator==(const Signature &other) const
{
    return bits_ == other.bits_ && words_ == other.words_;
}

uint64_t
Signature::hash() const
{
    // SplitMix64-style mixing over the words plus the length, so
    // signatures of different lengths never alias.
    uint64_t h = 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(bits_);
    for (uint64_t w : words_) {
        h ^= w + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 27;
    }
    h *= 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

std::string
Signature::str() const
{
    std::string s;
    s.reserve(static_cast<size_t>(bits_));
    for (int i = bits_ - 1; i >= 0; --i)
        s.push_back(bit(i) ? '1' : '0');
    return s;
}

} // namespace mercury
