#include "core/signature.hpp"

#include "util/logging.hpp"

namespace mercury {

Signature::Signature(int bits)
    : bits_(bits)
{
    if (bits < 0)
        panic("negative signature length ", bits);
    if (bits > 64)
        overflow_.assign(static_cast<size_t>(wordsFor(bits) - 1), 0);
}

Signature
Signature::fromWords(int bits, const uint64_t *words)
{
    Signature out(bits);
    if (bits <= 0)
        return out;
    const int nw = wordsFor(bits);
    out.word0_ = words[0];
    for (int w = 1; w < nw; ++w)
        out.overflow_[static_cast<size_t>(w - 1)] = words[w];
    // Keep the invariant the word-wise operator== and hash() rely on:
    // bits past the length are zero.
    if (bits & 63)
        out.wordRef(nw - 1) &= (1ull << (bits & 63)) - 1;
    return out;
}

void
Signature::checkIndex(int i) const
{
    if (i < 0 || i >= bits_)
        panic("signature bit index ", i, " out of range for ", bits_,
              " bits");
}

void
Signature::appendBit(bool value)
{
    ++bits_;
    if (wordsFor(bits_) - 1 > static_cast<int>(overflow_.size()))
        overflow_.push_back(0);
    setBit(bits_ - 1, value);
}

Signature
Signature::prefix(int bits) const
{
    if (bits > bits_)
        panic("prefix of ", bits, " bits from a ", bits_,
              "-bit signature");
    Signature out(bits);
    for (int w = 0; w < wordsFor(bits); ++w)
        out.wordRef(w) = word(w);
    if (bits & 63)
        out.wordRef(wordsFor(bits) - 1) &= (1ull << (bits & 63)) - 1;
    return out;
}

uint64_t
Signature::hash() const
{
    // SplitMix64-style mixing over the words plus the length, so
    // signatures of different lengths never alias.
    uint64_t h = 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(bits_);
    for (int w = 0; w < wordsFor(bits_); ++w) {
        h ^= word(w) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 27;
    }
    h *= 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

std::string
Signature::str() const
{
    std::string s;
    s.reserve(static_cast<size_t>(bits_));
    for (int i = bits_ - 1; i >= 0; --i)
        s.push_back(bit(i) ? '1' : '0');
    return s;
}

} // namespace mercury
