#include "core/adaptive.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace mercury {

AdaptiveController::AdaptiveController(const AcceleratorConfig &cfg,
                                       int num_layers)
    : sigBits_(cfg.initialSignatureBits),
      maxBits_(cfg.maxSignatureBits),
      plateauK_(cfg.plateauK),
      stoppageT_(cfg.stoppageT),
      lastLoss_(0.0),
      hasLastLoss_(false),
      flatIterations_(0)
{
    if (num_layers < 0)
        panic("negative layer count ", num_layers);
    if (sigBits_ <= 0 || sigBits_ > maxBits_)
        fatal("initial signature bits ", sigBits_, " outside 1..",
              maxBits_);
    layerState_.assign(static_cast<size_t>(num_layers), LayerState{});
}

void
AdaptiveController::observeLoss(double loss, double flat_tol)
{
    if (hasLastLoss_) {
        const double denom = std::max(std::fabs(lastLoss_), 1e-12);
        const bool flat = std::fabs(loss - lastLoss_) / denom < flat_tol;
        flatIterations_ = flat ? flatIterations_ + 1 : 0;
        if (flatIterations_ >= plateauK_) {
            if (sigBits_ < maxBits_)
                ++sigBits_;
            flatIterations_ = 0;
        }
    }
    lastLoss_ = loss;
    hasLastLoss_ = true;
}

void
AdaptiveController::checkLayer(int layer) const
{
    if (layer < 0 || layer >= numLayers())
        panic("adaptive layer index ", layer, " out of range");
}

void
AdaptiveController::observeLayerCycles(int layer, uint64_t mercury_cycles,
                                       uint64_t baseline_cycles)
{
    checkLayer(layer);
    LayerState &st = layerState_[static_cast<size_t>(layer)];
    if (!st.on)
        return;
    if (mercury_cycles >= baseline_cycles) {
        if (++st.consecutiveCostlier >= stoppageT_)
            st.on = false;
    } else {
        st.consecutiveCostlier = 0;
    }
}

bool
AdaptiveController::layerOn(int layer) const
{
    checkLayer(layer);
    return layerState_[static_cast<size_t>(layer)].on;
}

int
AdaptiveController::layersOn() const
{
    int n = 0;
    for (const auto &st : layerState_)
        n += st.on;
    return n;
}

int
AdaptiveController::layersOff() const
{
    return numLayers() - layersOn();
}

} // namespace mercury
