/**
 * @file
 * Similarity detection pass (§III-B): before any computation with
 * weights, every extracted input vector is hashed with RPQ, presented
 * to MCACHE, and its outcome recorded in the Hitmap and Signature
 * Table. This module is the functional front half of MERCURY; the
 * reuse engines consume its outputs.
 */

#ifndef MERCURY_CORE_SIMILARITY_DETECTOR_HPP
#define MERCURY_CORE_SIMILARITY_DETECTOR_HPP

#include <cstdint>

#include "core/hitmap.hpp"
#include "core/mcache.hpp"
#include "core/rpq.hpp"
#include "core/signature_table.hpp"
#include "sim/dataflow.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Result of one detection pass over a vector population. */
struct DetectionResult
{
    Hitmap hitmap;
    SignatureTable table;

    /** Aggregate counts for the timing model. */
    HitMix mix() const { return hitmap.mix(); }

    /** Distinct signatures inserted (unique-vector estimate). */
    int64_t uniqueVectors() const;
};

/** Runs RPQ + MCACHE over vector populations. */
class SimilarityDetector
{
  public:
    /**
     * @param rpq    signature engine for this vector dimension
     * @param cache  MCACHE instance (cleared at the start of a pass)
     * @param bits   current signature length
     */
    SimilarityDetector(const RPQEngine &rpq, MCache &cache, int bits);

    int signatureBits() const { return bits_; }

    /**
     * Detect similarity over the rows of a (num_vectors, d) matrix.
     * Clears the cache first (a new set of input vectors arrived,
     * §III-B3) and fills the hitmap and signature table in vector
     * order.
     */
    DetectionResult detect(const Tensor &rows) const;

    /**
     * Statistical form for big layers: detect over at most
     * `max_sample` rows (evenly strided) and return a mix scaled back
     * to the full population. Exercises the identical code path.
     */
    HitMix detectSampled(const Tensor &rows, int64_t max_sample) const;

  private:
    const RPQEngine &rpq_;
    MCache &cache_;
    int bits_;
};

} // namespace mercury

#endif // MERCURY_CORE_SIMILARITY_DETECTOR_HPP
