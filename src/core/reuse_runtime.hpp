/**
 * @file
 * ReuseRuntime: the one streaming scheduler every reuse pass runs on.
 *
 * MERCURY's loop — detect similarity once, then skip MACs in forward,
 * dX, and dW (§III-C, Eq. 1) — used to be scheduled three times over:
 * ConvReuseEngine, FcEngine, and AttentionEngine each hand-rolled
 * stream consumption, owner-before-hit ordering, SerialExecutor /
 * TaskGroup plumbing, and the serial-vs-overlapped fork for each of
 * their three passes — nine near-duplicate scheduling paths. The
 * runtime factors that machinery out: an engine now states *what* a
 * pass does (a declarative pass descriptor of row gather / owner
 * compute / hit scatter / group-accumulate callbacks) and the runtime
 * decides *how* it runs (serial run-then-filter, or overlapped
 * against the streaming DetectionBlock hand-off), with the ordering
 * contracts stated exactly once, here.
 *
 * ## Stream sources
 *
 * Every pass consumes one stream of DetectionBlocks, from one of
 * three sources (StreamSource):
 *
 *  - live(rows)   — a fresh detection pass over a row population
 *                   (forward passes; optionally captured into a
 *                   SignatureRecord for later replay);
 *  - hashed(job)  — the probe half of a pass whose hashing was begun
 *                   earlier with DetectionFrontend::beginHashStream
 *                   (the conv engine's cross-channel overlap);
 *  - replay(pass) — a recorded pass re-delivered with zero hashing or
 *                   probing cycles and no MCACHE access (§III-C2; the
 *                   backward and weight-gradient passes).
 *
 * ## Pass descriptors
 *
 * Three descriptor shapes cover every reuse pass in the system:
 *
 *  - FilterPassSet — `filters` filter passes over the stream's rows,
 *    `inFlight` at a time (the multi-version MCACHE data of Fig. 11).
 *    The first in-flight group consumes the stream: one SerialExecutor
 *    chain per filter receives every block in delivery order, so each
 *    filter sees its rows in stream order (the MCACHE
 *    owner-writes-before-hit-reads discipline) while distinct filters
 *    run in parallel. Remaining groups run whole-range on the pool
 *    after the stream drains. Conv forward / backwardInput /
 *    backwardWeights are FilterPassSets.
 *
 *  - RowPass — row-granular result forwarding (§III-C3): stream-order
 *    owner bookkeeping on the driving thread decides per row whether
 *    it computes or copies its owner's result. Computed rows are
 *    mutually independent and fan out through a TaskGroup while later
 *    blocks still hash; copies run after the joins (owners are always
 *    computed rows, so forwarding chains have depth one), with
 *    adjacent forwards whose owners are also adjacent coalesced into
 *    single span copies (span_batcher.hpp, RowPass::copyRowSpan). FC
 *    and attention forward, and both of their input-gradient replays,
 *    are RowPasses.
 *
 *  - ScanPass — an ordered scan over the stream on the driving thread
 *    (per-owner group accumulation, §III-C2 sum-then-multiply),
 *    followed by an optional parallel finish fan-out (the per-group
 *    outer products). The weight-gradient replays of FC and attention
 *    are ScanPasses, via weightGradReplay below.
 *
 * ## Ordering and locking contract (stated once, relied on by all)
 *
 * One thread drives a runtime pass at a time (the engine's caller).
 * Blocks are delivered in ascending order on the driving thread; a
 * block's MCACHE probe happens-before its delivery. Chained segments
 * of one filter run in delivery order and never concurrently with
 * each other; segments of different filters, and computed-row tasks,
 * run concurrently on the pool. Conv-forward HIT forwarding runs on
 * the runtime's arena-backed PassDataPlane, where the per-filter
 * version-slot discipline makes unsynchronized access race-free (see
 * pass_arena.hpp); the MCACHE data plane remains available to
 * callers and is serialized by per-shard locks. Block result
 * pointers die when the delivery callback returns — the runtime
 * copies them into rowResults() before any chain task can run.
 * Replay sources never touch the MCACHE at all. With overlap disabled
 * (or no pool) everything runs serially on the driving thread in the
 * exact legacy order; outputs and statistics are bit-identical either
 * way.
 */

#ifndef MERCURY_CORE_REUSE_RUNTIME_HPP
#define MERCURY_CORE_REUSE_RUNTIME_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/pass_arena.hpp"
#include "pipeline/detection_frontend.hpp"
#include "pipeline/signature_record.hpp"
#include "sim/dataflow.hpp"
#include "tensor/tensor.hpp"
#include "util/executors.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

/** Aggregated statistics of one reuse-enabled layer pass. */
struct ReuseStats
{
    HitMix mix;                ///< summed over all detection passes
    uint64_t macsTotal = 0;    ///< baseline MAC count
    uint64_t macsSkipped = 0;  ///< MACs avoided through reuse
    int64_t channelPasses = 0; ///< number of detection passes run

    double skipFraction() const
    {
        return macsTotal
                   ? static_cast<double>(macsSkipped) /
                         static_cast<double>(macsTotal)
                   : 0.0;
    }
};

/** Per-pass streaming scheduler for the reuse engines. */
class ReuseRuntime
{
  public:
    /**
     * @param fe   the engine's detection front-end
     * @param bits signature length of live detection passes
     */
    ReuseRuntime(DetectionFrontend &fe, int bits)
        : fe_(fe)
        , bits_(bits)
    {
    }

    ReuseRuntime(const ReuseRuntime &) = delete;
    ReuseRuntime &operator=(const ReuseRuntime &) = delete;

    /** Where the blocks of one scheduled pass come from. */
    class StreamSource
    {
      public:
        /**
         * Fresh detection pass over `rows`, optionally captured. With
         * a RowFiller, `rows` is materialized block by block right
         * before each block is hashed (single-touch fused extraction;
         * see pipeline/detection_pipeline.hpp) — the tensor is fully
         * filled by the time any segment reads it.
         */
        static StreamSource live(const Tensor &rows,
                                 SignatureRecord *capture = nullptr,
                                 RowFiller fill = {})
        {
            StreamSource s;
            s.rows_ = &rows;
            s.capture_ = capture;
            s.fill_ = std::move(fill);
            return s;
        }

        /** Probe half of a pass begun with beginHashStream. */
        static StreamSource hashed(DetectionHashJob &job,
                                   SignatureRecord *capture = nullptr)
        {
            StreamSource s;
            s.job_ = &job;
            s.capture_ = capture;
            return s;
        }

        /** Replay of a recorded pass (§III-C2; no MCACHE access). */
        static StreamSource replay(const SignatureRecord::Pass &pass)
        {
            StreamSource s;
            s.pass_ = &pass;
            return s;
        }

        bool isReplay() const { return pass_ != nullptr; }

        /** Rows the stream will deliver. */
        int64_t rowCount() const
        {
            if (pass_)
                return pass_->rows;
            if (job_)
                return job_->rowCount();
            return rows_->dim(0);
        }

      private:
        friend class ReuseRuntime;
        StreamSource() = default;

        const Tensor *rows_ = nullptr;
        DetectionHashJob *job_ = nullptr;
        const SignatureRecord::Pass *pass_ = nullptr;
        SignatureRecord *capture_ = nullptr;
        RowFiller fill_; ///< fused extraction of live sources
    };

    /**
     * Chained filter passes over one stream (conv-style).
     *
     * `segment(f, r0, r1)` processes rows [r0, r1) of filter pass `f`
     * and returns the MACs it skipped. Within one filter, segments
     * arrive in stream order and never overlap; the data slot a
     * filter may use (MCACHE version / scratch-buffer index) is
     * `f % inFlight`, constant across the filter's whole row range.
     *
     * `beforeGroup(f0, f1)` runs on the driving thread before every
     * filter group that does *not* consume the live stream — the
     * streamed first group is covered by the stream's initial cache
     * clear (the conv forward uses this for invalidateAllData).
     *
     * `afterGroup(f0, f1)` runs on the driving thread after a group's
     * segments have completed and their skip counts were folded into
     * the stats — the ordered scatter of backwardInput and the
     * per-group outer products of backwardWeights live here (the
     * callback may fan out again via parallelChains).
     *
     * `onStreamDelivered` runs once the stream has fully delivered
     * but before the in-flight chains are joined: the cross-channel
     * overlap window, where the conv engine extracts and begins
     * hashing the next channel while this one's chains drain.
     *
     * `onChainDrained(f0, f1)` runs on the driving thread after each
     * streamed consumer chain joins (overlapped path only, ascending
     * chain order): filters [f0, f1) are final for every row while
     * later chains still drain — the cross-LAYER overlap window,
     * where the planner's dependency edge launches the successor
     * layer's detection hash (see core/runtime_planner.hpp). Serial
     * execution never fires it (there is no drain to overlap with).
     */
    struct FilterPassSet
    {
        int64_t rows = 0;     ///< rows of the stream
        int64_t filters = 0;  ///< total filter passes
        int64_t inFlight = 1; ///< filters per group (data versions)
        std::function<uint64_t(int64_t f, int64_t r0, int64_t r1)> segment;
        std::function<void(int64_t f0, int64_t f1)> beforeGroup;
        std::function<void(int64_t f0, int64_t f1)> afterGroup;
        std::function<void()> onStreamDelivered;
        std::function<void(int64_t f0, int64_t f1)> onChainDrained;
    };

    /**
     * Row-forwarding pass (FC / attention style, §III-C3).
     *
     * `ownerOf(row, res)` runs on the driving thread in stream order
     * and returns the row whose result this row forwards (the row
     * itself to compute) — live passes do their owner-of-entry
     * bookkeeping here; replays read the record's owner map (`res` is
     * default-constructed for serial replays). `computeRow` runs once
     * per computed row, possibly concurrently across rows; `copyRow`
     * runs after every owner has computed. Each row is written by
     * exactly one invocation, and `rowSkipCost` MACs are booked into
     * the stats per forwarded row.
     */
    struct RowPass
    {
        std::function<int64_t(int64_t row, const McacheResult &res)>
            ownerOf;
        std::function<void(int64_t row)> computeRow;
        std::function<void(int64_t row, int64_t owner)> copyRow;
        /**
         * Optional span form of copyRow: copy rows [row0, row1) from
         * owners [owner0, owner0 + (row1 - row0)) in one move. The
         * overlapped scheduler coalesces adjacent forwards whose rows
         * and owners both step by one (see span_batcher.hpp — such
         * source/destination ranges never overlap) and calls this
         * instead of per-row copies; per-row copyRow remains the
         * fallback for singletons and when this is unset.
         */
        std::function<void(int64_t row0, int64_t row1, int64_t owner0)>
            copyRowSpan;
        uint64_t rowSkipCost = 0;
    };

    /**
     * Ordered scan + parallel finish (weight-gradient style,
     * §III-C2 sum-then-multiply). `scan(r0, r1)` consumes the stream
     * in order on the driving thread (group accumulation — no block
     * is independent of the ones before it); after the stream drains,
     * `finishItem(i)` fans `finishItems` disjoint work items out over
     * the pool (the per-group multiplies).
     */
    struct ScanPass
    {
        std::function<void(int64_t r0, int64_t r1)> scan;
        int64_t finishItems = 0;
        std::function<void(int64_t item)> finishItem;
    };

    /**
     * Resolved overlap decision for a pass of `rows` vectors: the
     * frontend's mode (Auto resolves from threads x rows) gated on a
     * pool existing. The engines consult this per pass shape to pick
     * the stream source they build; the run* entry points make the
     * same call internally, so both sides always agree.
     */
    bool overlappedFor(int64_t rows)
    {
        return fe_.overlapEnabledFor(rows);
    }

    /** True when some pass size may run against the hand-off. */
    bool overlapped() { return fe_.overlapEnabled(); }

    /**
     * Worker pool of the pass currently in flight (null when that
     * pass resolved to serial). Set at every run* entry from the
     * pass's row count, so parallelChains calls from afterGroup
     * callbacks follow the same overlap decision as the stream.
     */
    ThreadPool *pool() { return passPool_; }

    /**
     * Per-row outcomes of the pass's live detection, filled before
     * any segment can observe them (engine-owned lifetime: valid
     * until the next run* call). Replay passes do not populate this —
     * their descriptors read the record's owner map instead.
     */
    const std::vector<McacheResult> &rowResults() const
    {
        return rowResults_;
    }

    /**
     * Engine-facing scratch arena: cache-aligned buffers that persist
     * across the runtime's passes (see pass_arena.hpp). The engine
     * owns the reset cadence — reset only between its own passes,
     * never while tasks of a running pass may still touch a taken
     * buffer. (The runtime's internal bookkeeping uses a separate
     * arena reset at every run* entry, so engine buffers survive
     * run* calls.)
     */
    PassArena &scratch() { return scratch_; }

    /**
     * The arena-backed per-pass data plane (see pass_arena.hpp): the
     * lock-free replacement for the MCACHE data plane in conv-forward
     * HIT forwarding. The engine configures it per layer call and
     * invalidates it between filter groups; storage persists across
     * passes.
     */
    PassDataPlane &dataPlane() { return plane_; }

    /** Run one chained filter-pass set over the stream. */
    DetectionResult runFilterPasses(const StreamSource &src,
                                    const FilterPassSet &set,
                                    ReuseStats &stats);

    /** Run one row-forwarding pass over the stream. */
    DetectionResult runRows(const StreamSource &src, const RowPass &pass,
                            ReuseStats &stats);

    /** Run one ordered-scan pass over the stream. */
    DetectionResult runScan(const StreamSource &src, const ScanPass &pass,
                            ReuseStats &stats);

    /**
     * Fan `width` independent chain bodies out over the pool (serial
     * loop without one): the non-streamed filter groups and the
     * afterGroup fan-outs. fn(i) must write disjoint state.
     */
    void parallelChains(int64_t width,
                        const std::function<void(int64_t)> &fn);

  private:
    DetectionFrontend &fe_;
    int bits_;
    /// Pool of the pass in flight (run* entry resolves it per rows).
    ThreadPool *passPool_ = nullptr;
    std::vector<McacheResult> rowResults_;
    PassArena arena_;   ///< runtime bookkeeping; reset at run* entry
    PassArena scratch_; ///< engine scratch; engine-owned reset cadence
    PassDataPlane plane_;
    /// Reused stream-consumer chains (runFilterPasses); constructing
    /// a SerialExecutor per filter per channel pass was measurable.
    std::vector<std::unique_ptr<SerialExecutor>> chains_;

    /** Stream the source's blocks to `cb` (overlapped delivery). */
    DetectionResult deliver(const StreamSource &src,
                            const BlockConsumer &cb);

    /** Size rowResults_ once from the source, before streaming. */
    void sizeRowResults(const StreamSource &src);

    /** Serial consumption: batch-detect live sources, fill results. */
    DetectionResult consumeSerial(const StreamSource &src);

    /** Fold the pass's mix into the stats (live det / recorded). */
    void addPassStats(const StreamSource &src, const DetectionResult &det,
                      ReuseStats &stats);
};

/**
 * Weight-gradient replay of one recorded pass (§III-C2 applied to
 * Eq. 1): computes At B — the dW-shaped reduction Σ_r a_r ⊗ b_r over
 * the pass's n rows — with every forward-HIT row factored through its
 * owner (sum-then-multiply). Owners accumulate the b-rows of their
 * hit-group first (the owner's own row is a bit-exact copy, hits are
 * float adds), then each group performs one outer product with the
 * owner's a-row, in owner-ascending order — the same contraction
 * order (and zero-skip) as matmul(transpose2d(a), b), so a zero-hit
 * replay reproduces it bit for bit; with hits the result is the exact
 * sum up to float-summation order of the grouped b-rows.
 *
 * `stats.macsSkipped` gains da x db per HIT row (its outer product is
 * replaced by db accumulate adds, which the cycle model charges
 * separately as per-group accumulate cycles). Scheduled as a
 * ReuseRuntime ScanPass: the group sums consume the replayed hand-off
 * in stream order on the driving thread, then the outer products fan
 * out over the pool, one disjoint output row per task.
 */
Tensor weightGradReplay(ReuseRuntime &rt, const SignatureRecord &record,
                        const SignatureRecord::Pass &pass, const Tensor &a,
                        const Tensor &b, ReuseStats &stats);

} // namespace mercury

#endif // MERCURY_CORE_REUSE_RUNTIME_HPP
