/**
 * @file
 * Signature Table: per-input-vector signatures indexed by vector
 * number (§III-B3). Signatures computed during forward propagation
 * are saved here and reloaded during the previous layer's backward
 * pass when filter dimensions match (§III-C2).
 */

#ifndef MERCURY_CORE_SIGNATURE_TABLE_HPP
#define MERCURY_CORE_SIGNATURE_TABLE_HPP

#include <cstdint>
#include <vector>

#include "core/signature.hpp"

namespace mercury {

/** Dense table of signatures plus their MCACHE entry ids. */
class SignatureTable
{
  public:
    SignatureTable() = default;

    /** Number of stored signatures. */
    int64_t size() const { return static_cast<int64_t>(rows_.size()); }

    /** Append the signature of the next vector. */
    void append(Signature sig, int64_t entry_id);

    /** Signature of vector i. */
    const Signature &signature(int64_t i) const;

    /** MCACHE entry id vector i resolved to (-1 for MNU). */
    int64_t entryId(int64_t i) const;

    /** Drop all rows (new channel). */
    void clear();

    /**
     * Bytes needed to spill the table to memory between forward and
     * backward propagation (used by the global-buffer accounting).
     */
    uint64_t storageBytes() const;

  private:
    struct Row
    {
        Signature sig;
        int64_t entryId;
    };

    std::vector<Row> rows_;

    const Row &at(int64_t i) const;
};

} // namespace mercury

#endif // MERCURY_CORE_SIGNATURE_TABLE_HPP
