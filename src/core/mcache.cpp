#include "core/mcache.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mercury {

const char *
mcacheOutcomeName(McacheOutcome outcome)
{
    switch (outcome) {
      case McacheOutcome::Hit:
        return "HIT";
      case McacheOutcome::Mau:
        return "MAU";
      case McacheOutcome::Mnu:
        return "MNU";
    }
    return "?";
}

MCache::MCache(int sets, int ways, int data_versions)
    : sets_(sets), ways_(ways), versions_(data_versions),
      stats_("mcache")
{
    if (sets <= 0 || ways <= 0 || data_versions <= 0)
        fatal("MCACHE needs positive sets/ways/versions, got ", sets, "/",
              ways, "/", data_versions);
    lines_.resize(static_cast<size_t>(sets) * static_cast<size_t>(ways));
    for (auto &l : lines_) {
        l.data.assign(static_cast<size_t>(versions_), 0.0f);
        l.validData.assign(static_cast<size_t>(versions_), false);
    }
    insertBacklog_.assign(static_cast<size_t>(sets), 0);
}

MCache::Line &
MCache::line(int64_t entry_id)
{
    if (entry_id < 0 || entry_id >= entries())
        panic("MCACHE entry id ", entry_id, " out of range");
    return lines_[static_cast<size_t>(entry_id)];
}

const MCache::Line &
MCache::line(int64_t entry_id) const
{
    if (entry_id < 0 || entry_id >= entries())
        panic("MCACHE entry id ", entry_id, " out of range");
    return lines_[static_cast<size_t>(entry_id)];
}

int
MCache::setIndexOf(const Signature &sig) const
{
    return static_cast<int>(sig.hash() % static_cast<uint64_t>(sets_));
}

McacheResult
MCache::lookupOrInsert(const Signature &sig)
{
    return lookupOrInsertInSet(setIndexOf(sig), sig);
}

McacheResult
MCache::lookupOrInsertInSet(int set, const Signature &sig)
{
    if (set < 0 || set >= sets_)
        panic("set index ", set, " out of range 0..", sets_ - 1);
    const int64_t base = static_cast<int64_t>(set) * ways_;

    // Tag search among valid ways.
    for (int w = 0; w < ways_; ++w) {
        Line &l = lines_[static_cast<size_t>(base + w)];
        if (l.validTag && l.tag == sig) {
            l.epoch = epoch_;
            stats_.stat("hits")++;
            return {McacheOutcome::Hit, base + w};
        }
    }
    // Miss: try to claim a free way (no replacement, §III-B3).
    for (int w = 0; w < ways_; ++w) {
        Line &l = lines_[static_cast<size_t>(base + w)];
        if (!l.validTag) {
            if (quotaGate_ && !quotaGate_->tryReserve(insertTenant_)) {
                stats_.stat("quotaRejects")++;
                stats_.stat("mnu")++;
                return {McacheOutcome::Mnu, -1};
            }
            l.tag = sig;
            l.validTag = true;
            std::fill(l.validData.begin(), l.validData.end(), false);
            l.epoch = epoch_;
            l.tenant = insertTenant_;
            stats_.stat("mau")++;
            stats_.stat("inserts")++;
            ++insertBacklog_[static_cast<size_t>(set)];
            return {McacheOutcome::Mau, base + w};
        }
    }
    stats_.stat("mnu")++;
    return {McacheOutcome::Mnu, -1};
}

bool
MCache::dataValid(int64_t entry_id, int version) const
{
    const Line &l = line(entry_id);
    if (version < 0 || version >= versions_)
        panic("MCACHE data version ", version, " out of range");
    return l.validData[static_cast<size_t>(version)];
}

float
MCache::readData(int64_t entry_id, int version) const
{
    const Line &l = line(entry_id);
    if (version < 0 || version >= versions_)
        panic("MCACHE data version ", version, " out of range");
    if (!l.validData[static_cast<size_t>(version)])
        panic("MCACHE read of invalid data: entry ", entry_id,
              " version ", version);
    stats_.stat("dataReads")++;
    return l.data[static_cast<size_t>(version)];
}

void
MCache::writeData(int64_t entry_id, int version, float value)
{
    Line &l = line(entry_id);
    if (version < 0 || version >= versions_)
        panic("MCACHE data version ", version, " out of range");
    if (!l.validTag)
        panic("MCACHE data write to a line with no valid tag: entry ",
              entry_id);
    l.data[static_cast<size_t>(version)] = value;
    l.validData[static_cast<size_t>(version)] = true;
    stats_.stat("dataWrites")++;
}

void
MCache::invalidateAllData()
{
    for (auto &l : lines_)
        std::fill(l.validData.begin(), l.validData.end(), false);
    stats_.stat("dataInvalidations")++;
}

void
MCache::clear()
{
    for (auto &l : lines_) {
        if (l.validTag && quotaGate_)
            quotaGate_->release(l.tenant);
        l.validTag = false;
        std::fill(l.validData.begin(), l.validData.end(), false);
        l.epoch = 0;
        l.tenant = -1;
        l.pins = 0;
    }
    std::fill(insertBacklog_.begin(), insertBacklog_.end(), 0);
    stats_.stat("clears")++;
}

int
MCache::setOccupancy(int set) const
{
    if (set < 0 || set >= sets_)
        panic("set index ", set, " out of range");
    int occ = 0;
    const int64_t base = static_cast<int64_t>(set) * ways_;
    for (int w = 0; w < ways_; ++w)
        occ += lines_[static_cast<size_t>(base + w)].validTag;
    return occ;
}

uint64_t
MCache::maxInsertBacklog() const
{
    uint64_t mx = 0;
    for (uint64_t b : insertBacklog_)
        mx = std::max(mx, b);
    return mx;
}

void
MCache::resetInsertBacklog()
{
    std::fill(insertBacklog_.begin(), insertBacklog_.end(), 0);
}

uint64_t
MCache::entryEpoch(int64_t entry_id) const
{
    return line(entry_id).epoch;
}

int
MCache::entryTenant(int64_t entry_id) const
{
    return line(entry_id).tenant;
}

bool
MCache::tagValid(int64_t entry_id) const
{
    return line(entry_id).validTag;
}

const Signature &
MCache::tagOf(int64_t entry_id) const
{
    const Line &l = line(entry_id);
    if (!l.validTag)
        panic("MCACHE tag read of an invalid line: entry ", entry_id);
    return l.tag;
}

int64_t
MCache::tenantEntries(int tenant) const
{
    int64_t n = 0;
    for (const auto &l : lines_)
        n += (l.validTag && l.tenant == tenant);
    return n;
}

void
MCache::pin(int64_t entry_id)
{
    Line &l = line(entry_id);
    if (!l.validTag)
        panic("MCACHE pin of an invalid line: entry ", entry_id);
    ++l.pins;
}

void
MCache::unpin(int64_t entry_id)
{
    Line &l = line(entry_id);
    if (l.pins == 0)
        panic("MCACHE unpin of an unpinned line: entry ", entry_id);
    --l.pins;
}

uint32_t
MCache::pinCount(int64_t entry_id) const
{
    return line(entry_id).pins;
}

void
MCache::evictLine(Line &l)
{
    if (quotaGate_)
        quotaGate_->release(l.tenant);
    l.validTag = false;
    std::fill(l.validData.begin(), l.validData.end(), false);
    l.epoch = 0;
    l.tenant = -1;
    stats_.stat("evictions")++;
}

int64_t
MCache::evictOlderThan(uint64_t min_epoch)
{
    int64_t evicted = 0;
    for (auto &l : lines_) {
        if (!l.validTag || l.epoch >= min_epoch)
            continue;
        if (l.pins > 0) {
            stats_.stat("evictionPinSkips")++;
            continue;
        }
        evictLine(l);
        ++evicted;
    }
    return evicted;
}

int64_t
MCache::evictTenant(int tenant)
{
    int64_t evicted = 0;
    for (auto &l : lines_) {
        if (!l.validTag || l.tenant != tenant)
            continue;
        if (l.pins > 0) {
            stats_.stat("evictionPinSkips")++;
            continue;
        }
        evictLine(l);
        ++evicted;
    }
    return evicted;
}

void
MCache::restoreLine(int64_t entry_id, const Signature &sig,
                    uint64_t epoch, int tenant)
{
    Line &l = line(entry_id);
    if (l.validTag)
        panic("MCACHE restore into an occupied line: entry ", entry_id);
    l.tag = sig;
    l.validTag = true;
    std::fill(l.validData.begin(), l.validData.end(), false);
    l.epoch = epoch;
    l.tenant = tenant;
    l.pins = 0;
    stats_.stat("restores")++;
}

} // namespace mercury
