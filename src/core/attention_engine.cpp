#include "core/attention_engine.hpp"

#include <optional>
#include <vector>

#include "core/kernels/kernels.hpp"
#include "core/reuse_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace mercury {

AttentionEngine::AttentionEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "AttentionEngine")
{
}

AttentionEngine::AttentionEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "AttentionEngine")
{
}

Tensor
AttentionEngine::forward(const Tensor &x, ReuseStats &stats,
                         SignatureRecord *record, RowPlanSlot *plan)
{
    if (plan && !plan->runtime)
        plan = nullptr; // defensive: run unplanned on a stale slot
    if (x.rank() != 2)
        panic("AttentionEngine expects (T, D), got ", x.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);

    stats = ReuseStats{};
    // W = X Xt costs T*T*D MACs; Y = W X costs T*T*D MACs.
    stats.macsTotal = 2ull * static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(d);

    std::vector<int64_t> local_owner_of_entry;
    std::vector<int64_t> &owner_of_entry =
        plan ? plan->ownerOfEntry : local_owner_of_entry;
    owner_of_entry.assign(static_cast<size_t>(frontend_->entries()), -1);

    Tensor w({t, t});
    Tensor y({t, d});

    // One RowPass over the token rows (§III-C3-style forwarding): a
    // computed row is self-contained — w_i = X x_i needs only X, then
    // y_i = w_i X needs only the row's own w_i — so computed rows run
    // in any order; a HIT row copies only its owner's Y row (its W
    // row is never read, exactly as in the staged formulation).
    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    ReuseRuntime::RowPass pass;
    pass.ownerOf = [&](int64_t i, const McacheResult &mr) {
        // The first MAU row of an entry owns it; owners always
        // compute (§III-C3 "earlier PE" discipline).
        int64_t owner = i;
        if (mr.outcome == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(mr.entryId)] >= 0) {
            owner = owner_of_entry[static_cast<size_t>(mr.entryId)];
        } else if (mr.outcome == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(mr.entryId)] = i;
        }
        return owner;
    };
    pass.computeRow = [&](int64_t i) {
        for (int64_t j = 0; j < t; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += x.at2(i, e) * x.at2(j, e);
            w.at2(i, j) = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += w.at2(i, e) * x.at2(e, j);
            y.at2(i, j) = acc;
        }
    };
    pass.copyRow = [&](int64_t i, int64_t o) {
        kernels::ops().copySpan(y.data() + i * d, y.data() + o * d, d);
    };
    pass.copyRowSpan = [&](int64_t r0, int64_t r1, int64_t o0) {
        kernels::ops().copySpan(y.data() + r0 * d, y.data() + o0 * d,
                                (r1 - r0) * d);
    };
    // A forwarded row skips both of its stages: t*d (W) + t*d (Y).
    pass.rowSkipCost =
        2ull * static_cast<uint64_t>(t) * static_cast<uint64_t>(d);

    rt.runRows(ReuseRuntime::StreamSource::live(x, record), pass, stats);
    return y;
}

Tensor
AttentionEngine::backward(const Tensor &x, const Tensor &g,
                          const SignatureRecord &record,
                          int64_t pass_index, ReuseStats &stats,
                          const Tensor *xtx_pre, RowPlanSlot *plan)
{
    if (plan && !plan->runtime)
        plan = nullptr;
    if (x.rank() != 2 || g.rank() != 2 || x.shape() != g.shape())
        panic("AttentionEngine backward expects matching (T, D) input "
              "and gradient, got ",
              x.shapeStr(), " and ", g.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);
    const SignatureRecord::Pass &pass = record.pass(pass_index);
    if (pass.rows != t)
        panic("recorded pass holds ", pass.rows, " rows, sample has ", t);

    // Per computed row: the three gradient terms of Y = (X Xt) X cost
    // d*d (t1) + 4*t*d (u, t2, v, t3) MACs; the shared Xt X factor
    // costs t*d*d once per sample regardless of hits.
    const uint64_t row_cost =
        static_cast<uint64_t>(d) * static_cast<uint64_t>(d) +
        4ull * static_cast<uint64_t>(t) * static_cast<uint64_t>(d);
    stats = ReuseStats{};
    // The shared Xt X factor is charged here only when this call
    // computes it; a precomputed factor was charged to the
    // weight-gradient pass that produced it (backwardProjection).
    stats.macsTotal = static_cast<uint64_t>(t) * row_cost;
    if (!xtx_pre) {
        stats.macsTotal += static_cast<uint64_t>(t) *
                           static_cast<uint64_t>(d) *
                           static_cast<uint64_t>(d);
    }

    // Shared factor, via the same tensor op the exact path uses so a
    // zero-hit replay stays bit-identical (a replayed factor is
    // itself bit-identical to this op at zero hits).
    Tensor xtx_local;
    if (!xtx_pre)
        xtx_local = matmul(transpose2d(x), x); // (D, D)
    const Tensor &xtx = xtx_pre ? *xtx_pre : xtx_local;
    Tensor out({t, d});

    std::vector<int64_t> local_owner;
    std::vector<int64_t> &owner = plan ? plan->owner : local_owner;
    record.ownersOf(pass, owner);

    // One replayed RowPass (§III-C2): computed rows run the
    // three-term gradient of dX = G (Xt X) + X Gt X + (X Xt) G —
    // every term is row-wise in the row's own X / G row plus whole
    // matrices, and the element accumulation order matches the exact
    // matmul-factored path exactly; forward-HIT token rows copy their
    // owner's row.
    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    ReuseRuntime::RowPass rp;
    rp.ownerOf = [&](int64_t i, const McacheResult &) {
        return owner[static_cast<size_t>(i)];
    };
    rp.computeRow = [&](int64_t i) {
        std::vector<float> t1(static_cast<size_t>(d));
        std::vector<float> u(static_cast<size_t>(t));
        std::vector<float> t2(static_cast<size_t>(d));
        std::vector<float> vv(static_cast<size_t>(t));
        std::vector<float> t3(static_cast<size_t>(d));
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += g.at2(i, e) * xtx.at2(e, j);
            t1[static_cast<size_t>(j)] = acc;
        }
        for (int64_t e = 0; e < t; ++e) {
            float acc = 0.0f;
            for (int64_t p = 0; p < d; ++p)
                acc += x.at2(i, p) * g.at2(e, p);
            u[static_cast<size_t>(e)] = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += u[static_cast<size_t>(e)] * x.at2(e, j);
            t2[static_cast<size_t>(j)] = acc;
        }
        for (int64_t e = 0; e < t; ++e) {
            float acc = 0.0f;
            for (int64_t p = 0; p < d; ++p)
                acc += x.at2(i, p) * x.at2(e, p);
            vv[static_cast<size_t>(e)] = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += vv[static_cast<size_t>(e)] * g.at2(e, j);
            t3[static_cast<size_t>(j)] = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            out.at2(i, j) = t1[static_cast<size_t>(j)] +
                            t2[static_cast<size_t>(j)] +
                            t3[static_cast<size_t>(j)];
        }
    };
    rp.copyRow = [&](int64_t i, int64_t o) {
        kernels::ops().copySpan(out.data() + i * d, out.data() + o * d,
                                d);
    };
    rp.copyRowSpan = [&](int64_t r0, int64_t r1, int64_t o0) {
        kernels::ops().copySpan(out.data() + r0 * d,
                                out.data() + o0 * d, (r1 - r0) * d);
    };
    rp.rowSkipCost = row_cost;

    rt.runRows(ReuseRuntime::StreamSource::replay(pass), rp, stats);
    return out;
}

Tensor
AttentionEngine::backwardProjection(const Tensor &x,
                                    const SignatureRecord &record,
                                    int64_t pass_index, ReuseStats &stats,
                                    RowPlanSlot *plan)
{
    if (plan && !plan->runtime)
        plan = nullptr;
    if (x.rank() != 2)
        panic("AttentionEngine expects (T, D), got ", x.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);
    const SignatureRecord::Pass &pass = record.pass(pass_index);
    if (pass.rows != t)
        panic("recorded pass holds ", pass.rows, " rows, sample has ", t);

    stats = ReuseStats{};
    stats.macsTotal = static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(d) * static_cast<uint64_t>(d);

    // Sum-then-multiply (§III-C2 on the dW-shaped projection factor):
    // group the token rows by forward owner, one outer product per
    // group with the owner's row.
    std::optional<ReuseRuntime> local_rt;
    ReuseRuntime &rt =
        plan ? *plan->runtime
             : local_rt.emplace(*frontend_, frontend_.signatureBits());
    return weightGradReplay(rt, record, pass, x, x, stats);
}

} // namespace mercury
