#include "core/attention_engine.hpp"

#include "core/reuse_replay.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace mercury {

AttentionEngine::AttentionEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "AttentionEngine")
{
}

AttentionEngine::AttentionEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "AttentionEngine")
{
}

Tensor
AttentionEngine::forward(const Tensor &x, ReuseStats &stats,
                         SignatureRecord *record)
{
    if (x.rank() != 2)
        panic("AttentionEngine expects (T, D), got ", x.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);

    stats = ReuseStats{};
    stats.channelPasses = 1;
    // W = X Xt costs T*T*D MACs; Y = W X costs T*T*D MACs.
    stats.macsTotal = 2ull * static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(d);

    std::vector<int64_t> owner_of_entry(
        static_cast<size_t>(frontend_->entries()), -1);
    std::vector<int64_t> owner(static_cast<size_t>(t), -1);

    // Owner bookkeeping for one row, in stream order (§III-C3 style:
    // the first MAU row of an entry owns it; owners always compute).
    const auto record_owner = [&](int64_t i, const McacheResult &mr) {
        owner[static_cast<size_t>(i)] = i;
        if (mr.outcome == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(mr.entryId)] >= 0) {
            owner[static_cast<size_t>(i)] =
                owner_of_entry[static_cast<size_t>(mr.entryId)];
        } else if (mr.outcome == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(mr.entryId)] = i;
        }
        return owner[static_cast<size_t>(i)];
    };

    Tensor w({t, t});
    Tensor y({t, d});

    // Both stages for one computed row: w_i = X x_i (needs only X),
    // then y_i = w_i X (needs only the row's own w_i) — so a computed
    // row is self-contained and rows can run in any order.
    const auto compute_row = [&](int64_t i) {
        for (int64_t j = 0; j < t; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += x.at2(i, e) * x.at2(j, e);
            w.at2(i, j) = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += w.at2(i, e) * x.at2(e, j);
            y.at2(i, j) = acc;
        }
    };

    if (frontend_->overlapEnabled()) {
        // Streaming pass: computed rows of each delivered block fan
        // out to the pool while later blocks hash; forwarded rows are
        // copied after the joins (owners always compute, and nothing
        // reads a forwarded row's W, so only Y needs the copy — as in
        // the serial path, where a HIT's W row is never read either).
        ThreadPool *pool = frontend_->workerPool();
        TaskGroup computes(pool);
        std::vector<int64_t> forwards;
        const DetectionResult det = frontend_->detectStream(
            x, frontend_.signatureBits(),
            [&](const DetectionBlock &blk) {
                std::vector<int64_t> computed;
                for (int64_t i = blk.row0; i < blk.row1; ++i) {
                    if (record_owner(i, blk.results[i - blk.row0]) != i) {
                        forwards.push_back(i);
                        stats.macsSkipped +=
                            2ull * static_cast<uint64_t>(t) *
                            static_cast<uint64_t>(d);
                    } else {
                        computed.push_back(i);
                    }
                }
                if (!computed.empty()) {
                    computes.run([&compute_row,
                                  batch = std::move(computed)] {
                        for (const int64_t i : batch)
                            compute_row(i);
                    });
                }
            },
            record);
        stats.mix = det.mix();
        computes.wait();
        pool->parallelFor(
            static_cast<int64_t>(forwards.size()), [&](int64_t f) {
                const int64_t i = forwards[static_cast<size_t>(f)];
                const int64_t o = owner[static_cast<size_t>(i)];
                for (int64_t j = 0; j < d; ++j)
                    y.at2(i, j) = y.at2(o, j);
            });
        return y;
    }

    // Run-then-filter path.
    const DetectionResult det =
        frontend_->detect(x, frontend_.signatureBits(), record);
    stats.mix = det.mix();
    for (int64_t i = 0; i < t; ++i) {
        record_owner(i, {det.hitmap.outcome(i), det.hitmap.entryId(i)});
    }

    // Stage 1: W = X Xt with row forwarding.
    for (int64_t i = 0; i < t; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o != i) {
            for (int64_t j = 0; j < t; ++j)
                w.at2(i, j) = w.at2(o, j);
            stats.macsSkipped +=
                static_cast<uint64_t>(t) * static_cast<uint64_t>(d);
            continue;
        }
        for (int64_t j = 0; j < t; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += x.at2(i, e) * x.at2(j, e);
            w.at2(i, j) = acc;
        }
    }

    // Stage 2: Y = W X with the same forwarding pattern.
    for (int64_t i = 0; i < t; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o != i) {
            for (int64_t j = 0; j < d; ++j)
                y.at2(i, j) = y.at2(o, j);
            stats.macsSkipped +=
                static_cast<uint64_t>(t) * static_cast<uint64_t>(d);
            continue;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += w.at2(i, e) * x.at2(e, j);
            y.at2(i, j) = acc;
        }
    }
    return y;
}

Tensor
AttentionEngine::backward(const Tensor &x, const Tensor &g,
                          const SignatureRecord &record,
                          int64_t pass_index, ReuseStats &stats,
                          const Tensor *xtx_pre)
{
    if (x.rank() != 2 || g.rank() != 2 || x.shape() != g.shape())
        panic("AttentionEngine backward expects matching (T, D) input "
              "and gradient, got ",
              x.shapeStr(), " and ", g.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);
    const SignatureRecord::Pass &pass = record.pass(pass_index);
    if (pass.rows != t)
        panic("recorded pass holds ", pass.rows, " rows, sample has ", t);

    // Per computed row: the three gradient terms of Y = (X Xt) X cost
    // d*d (t1) + 4*t*d (u, t2, v, t3) MACs; the shared Xt X factor
    // costs t*d*d once per sample regardless of hits.
    const uint64_t row_cost =
        static_cast<uint64_t>(d) * static_cast<uint64_t>(d) +
        4ull * static_cast<uint64_t>(t) * static_cast<uint64_t>(d);
    stats = ReuseStats{};
    stats.channelPasses = 1;
    stats.mix = pass.mix;
    // The shared Xt X factor is charged here only when this call
    // computes it; a precomputed factor was charged to the
    // weight-gradient pass that produced it (backwardProjection).
    stats.macsTotal = static_cast<uint64_t>(t) * row_cost;
    if (!xtx_pre) {
        stats.macsTotal += static_cast<uint64_t>(t) *
                           static_cast<uint64_t>(d) *
                           static_cast<uint64_t>(d);
    }

    // Shared factor, via the same tensor op the exact path uses so a
    // zero-hit replay stays bit-identical (a replayed factor is
    // itself bit-identical to this op at zero hits).
    Tensor xtx_local;
    if (!xtx_pre)
        xtx_local = matmul(transpose2d(x), x); // (D, D)
    const Tensor &xtx = xtx_pre ? *xtx_pre : xtx_local;
    Tensor out({t, d});

    // One computed gradient row of dX = G (Xt X) + X Gt X + (X Xt) G:
    // every term is row-wise in the row's own X / G row plus whole
    // matrices, and the element accumulation order matches the exact
    // matmul-factored path exactly.
    const auto compute_row = [&](int64_t i) {
        std::vector<float> t1(static_cast<size_t>(d));
        std::vector<float> u(static_cast<size_t>(t));
        std::vector<float> t2(static_cast<size_t>(d));
        std::vector<float> vv(static_cast<size_t>(t));
        std::vector<float> t3(static_cast<size_t>(d));
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += g.at2(i, e) * xtx.at2(e, j);
            t1[static_cast<size_t>(j)] = acc;
        }
        for (int64_t e = 0; e < t; ++e) {
            float acc = 0.0f;
            for (int64_t p = 0; p < d; ++p)
                acc += x.at2(i, p) * g.at2(e, p);
            u[static_cast<size_t>(e)] = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += u[static_cast<size_t>(e)] * x.at2(e, j);
            t2[static_cast<size_t>(j)] = acc;
        }
        for (int64_t e = 0; e < t; ++e) {
            float acc = 0.0f;
            for (int64_t p = 0; p < d; ++p)
                acc += x.at2(i, p) * x.at2(e, p);
            vv[static_cast<size_t>(e)] = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += vv[static_cast<size_t>(e)] * g.at2(e, j);
            t3[static_cast<size_t>(j)] = acc;
        }
        for (int64_t j = 0; j < d; ++j) {
            out.at2(i, j) = t1[static_cast<size_t>(j)] +
                            t2[static_cast<size_t>(j)] +
                            t3[static_cast<size_t>(j)];
        }
    };

    // Replayed pass (§III-C2): computed rows run the three-term
    // gradient; forward-HIT token rows copy their owner's row.
    replayRowBackward(*frontend_, record, pass, row_cost, stats,
                      compute_row, [&](int64_t i, int64_t o) {
                          for (int64_t j = 0; j < d; ++j)
                              out.at2(i, j) = out.at2(o, j);
                      });
    return out;
}

Tensor
AttentionEngine::backwardProjection(const Tensor &x,
                                    const SignatureRecord &record,
                                    int64_t pass_index, ReuseStats &stats)
{
    if (x.rank() != 2)
        panic("AttentionEngine expects (T, D), got ", x.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);
    const SignatureRecord::Pass &pass = record.pass(pass_index);
    if (pass.rows != t)
        panic("recorded pass holds ", pass.rows, " rows, sample has ", t);

    stats = ReuseStats{};
    stats.channelPasses = 1;
    stats.mix = pass.mix;
    stats.macsTotal = static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(d) * static_cast<uint64_t>(d);

    // Sum-then-multiply (§III-C2 on the dW-shaped projection factor):
    // group the token rows by forward owner, one outer product per
    // group with the owner's row.
    return replayWeightGrad(*frontend_, record, pass, x, x, stats);
}

} // namespace mercury
