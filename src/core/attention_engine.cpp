#include "core/attention_engine.hpp"

#include "util/logging.hpp"

namespace mercury {

AttentionEngine::AttentionEngine(MCache &cache, int sig_bits,
                                 uint64_t seed, const PipelineConfig &pipe)
    : frontend_(cache, sig_bits, seed, pipe, "AttentionEngine")
{
}

AttentionEngine::AttentionEngine(DetectionFrontend &frontend, int sig_bits)
    : frontend_(frontend, sig_bits, "AttentionEngine")
{
}

Tensor
AttentionEngine::forward(const Tensor &x, ReuseStats &stats)
{
    if (x.rank() != 2)
        panic("AttentionEngine expects (T, D), got ", x.shapeStr());
    const int64_t t = x.dim(0);
    const int64_t d = x.dim(1);

    DetectionResult det = frontend_->detect(x, frontend_.signatureBits());

    stats = ReuseStats{};
    stats.mix = det.mix();
    stats.channelPasses = 1;
    // W = X Xt costs T*T*D MACs; Y = W X costs T*T*D MACs.
    stats.macsTotal = 2ull * static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(t) *
                      static_cast<uint64_t>(d);

    std::vector<int64_t> owner_of_entry(
        static_cast<size_t>(frontend_->entries()), -1);
    std::vector<int64_t> owner(static_cast<size_t>(t), -1);
    for (int64_t i = 0; i < t; ++i) {
        const McacheOutcome outc = det.hitmap.outcome(i);
        const int64_t id = det.hitmap.entryId(i);
        owner[static_cast<size_t>(i)] = i;
        if (outc == McacheOutcome::Hit &&
            owner_of_entry[static_cast<size_t>(id)] >= 0) {
            owner[static_cast<size_t>(i)] =
                owner_of_entry[static_cast<size_t>(id)];
        } else if (outc == McacheOutcome::Mau) {
            owner_of_entry[static_cast<size_t>(id)] = i;
        }
    }

    // Stage 1: W = X Xt with row forwarding.
    Tensor w({t, t});
    for (int64_t i = 0; i < t; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o != i) {
            for (int64_t j = 0; j < t; ++j)
                w.at2(i, j) = w.at2(o, j);
            stats.macsSkipped +=
                static_cast<uint64_t>(t) * static_cast<uint64_t>(d);
            continue;
        }
        for (int64_t j = 0; j < t; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e)
                acc += x.at2(i, e) * x.at2(j, e);
            w.at2(i, j) = acc;
        }
    }

    // Stage 2: Y = W X with the same forwarding pattern.
    Tensor y({t, d});
    for (int64_t i = 0; i < t; ++i) {
        const int64_t o = owner[static_cast<size_t>(i)];
        if (o != i) {
            for (int64_t j = 0; j < d; ++j)
                y.at2(i, j) = y.at2(o, j);
            stats.macsSkipped +=
                static_cast<uint64_t>(t) * static_cast<uint64_t>(d);
            continue;
        }
        for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t e = 0; e < t; ++e)
                acc += w.at2(i, e) * x.at2(e, j);
            y.at2(i, j) = acc;
        }
    }
    return y;
}

} // namespace mercury
