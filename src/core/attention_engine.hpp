/**
 * @file
 * Functional attention layer with MERCURY reuse (§III-C4).
 *
 * For input rows X (seq_len x embed_dim) the layer computes
 * W = X Xt followed by Y = W X. Both products are driven by the
 * similarity of X's rows: a row x_i similar to an earlier x_j yields
 * similar W and Y rows, so HIT rows copy the owner's rows in both
 * stages — the same FC-style forwarding the paper applies.
 *
 * Overlap (§III-B, Fig. 8): with the frontend's `overlap` knob set
 * and a worker pool available, forward() consumes the detection
 * pipeline's streaming block hand-off. A computed row is
 * self-contained (w_i needs only X, y_i needs only w_i), so computed
 * rows of a delivered block fan out to the pool while later blocks
 * are still hashing; HIT rows are forwarded after the joins. Output
 * and statistics are bit-identical to the serial path. One thread
 * drives an engine (or a shared frontend) at a time.
 */

#ifndef MERCURY_CORE_ATTENTION_ENGINE_HPP
#define MERCURY_CORE_ATTENTION_ENGINE_HPP

#include <memory>

#include "core/mcache.hpp"
#include "core/reuse_runtime.hpp" // ReuseStats
#include "core/runtime_planner.hpp" // RowPlanSlot
#include "pipeline/detection_frontend.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Functional attention engine with MERCURY computation reuse. */
class AttentionEngine
{
  public:
    /**
     * Run through a caller-provided MCACHE: builds an internal
     * single-shard DetectionFrontend view over it.
     *
     * @param cache    MCACHE instance (tag machinery only; whole
     *                 output rows travel by FC-style forwarding)
     * @param sig_bits signature length for detection
     * @param seed     seed for the per-layer random projection
     * @param pipe     pipeline knobs for the internal front-end
     */
    AttentionEngine(MCache &cache, int sig_bits, uint64_t seed,
                    const PipelineConfig &pipe = {});

    /** Run through a shared detection front-end. */
    AttentionEngine(DetectionFrontend &frontend, int sig_bits);

    /**
     * Reuse-enabled attention: X (T, D) -> Y (T, D) via W = X Xt,
     * Y = W X. One detection pass over X's rows drives both stages.
     *
     * @param record when non-null, the sample's detection pass is
     *        appended for the backward replay (§III-C2). The caller
     *        clears the record once per forward invocation (the layer
     *        runs one engine pass per sample into one record).
     * @param plan planned execution state (persistent runtime and
     *        owner buffers) from the RuntimePlanner; null runs the
     *        unplanned path. Bit-identical either way.
     */
    Tensor forward(const Tensor &x, ReuseStats &stats,
                   SignatureRecord *record = nullptr,
                   RowPlanSlot *plan = nullptr);

    /**
     * Input-gradient pass with replayed reuse (§III-C2): computes
     * dL/dX of Y = (X Xt) X row by row — a forward-HIT token row
     * receives its owner row's gradient row instead of recomputing
     * its three gradient terms. `g` is the (T, D) output gradient of
     * the sample (pre-scaled exactly as the exact path scales it),
     * `pass_index` selects the sample's recorded pass. Bit-identical
     * to the exact factorized backward when the pass holds no hits.
     *
     * When `xtx` is non-null it is used as the sample's shared
     * projection factor Xt X instead of recomputing it — pass the
     * result of backwardProjection() to ride the weight-gradient
     * replay; the projection's t*d*d MACs are then charged by that
     * call, not here.
     */
    Tensor backward(const Tensor &x, const Tensor &g,
                    const SignatureRecord &record, int64_t pass_index,
                    ReuseStats &stats, const Tensor *xtx = nullptr,
                    RowPlanSlot *plan = nullptr);

    /**
     * Projection-gradient factor with replayed reuse (§III-C2 applied
     * to the dW-shaped reduction of the layer): Xt X = Σ_t x_t ⊗ x_t
     * is the weight-gradient analogue of the parameter-free attention
     * formulation — the (D, D) factor backprop multiplies every
     * gradient row through. A forward-HIT token row's outer product
     * factors through its owner as x_owner ⊗ (Σ x over the owner's
     * hit-group) — sum-then-multiply, one multiply per group.
     * Bit-identical to matmul(transpose2d(x), x) when the pass holds
     * no hits; exact up to float-summation order of the grouped token
     * rows otherwise.
     */
    Tensor backwardProjection(const Tensor &x,
                              const SignatureRecord &record,
                              int64_t pass_index, ReuseStats &stats,
                              RowPlanSlot *plan = nullptr);

    /** Signature length this engine detects with. */
    int signatureBits() const { return frontend_.signatureBits(); }

  private:
    FrontendHandle frontend_;
};

} // namespace mercury

#endif // MERCURY_CORE_ATTENTION_ENGINE_HPP
