/**
 * @file
 * Functional attention layer with MERCURY reuse (§III-C4).
 *
 * For input rows X (seq_len x embed_dim) the layer computes
 * W = X Xt followed by Y = W X. Both products are driven by the
 * similarity of X's rows: a row x_i similar to an earlier x_j yields
 * similar W and Y rows, so HIT rows copy the owner's rows in both
 * stages — the same FC-style forwarding the paper applies.
 */

#ifndef MERCURY_CORE_ATTENTION_ENGINE_HPP
#define MERCURY_CORE_ATTENTION_ENGINE_HPP

#include <memory>

#include "core/conv_reuse_engine.hpp" // ReuseStats
#include "core/mcache.hpp"
#include "pipeline/detection_frontend.hpp"
#include "tensor/tensor.hpp"

namespace mercury {

/** Functional attention engine with MERCURY computation reuse. */
class AttentionEngine
{
  public:
    AttentionEngine(MCache &cache, int sig_bits, uint64_t seed,
                    const PipelineConfig &pipe = {});

    /** Run through a shared detection front-end. */
    AttentionEngine(DetectionFrontend &frontend, int sig_bits);

    /**
     * Reuse-enabled attention: X (T, D) -> Y (T, D) via W = X Xt,
     * Y = W X. One detection pass over X's rows drives both stages.
     */
    Tensor forward(const Tensor &x, ReuseStats &stats);

    int signatureBits() const { return frontend_.signatureBits(); }

  private:
    FrontendHandle frontend_;
};

} // namespace mercury

#endif // MERCURY_CORE_ATTENTION_ENGINE_HPP
