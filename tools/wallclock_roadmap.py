#!/usr/bin/env python3
"""Render the wall-clock-multicore bench artifact into ROADMAP-ready text.

The CI ``wall-clock`` job runs the non-smoke microbenches on a real
multi-core runner and captures their ``BENCH_overlap.json {...}``
result lines. This script turns those lines into:

 - the measured ``wall_*`` speedups, one line per bench, formatted for
   pasting into the ROADMAP wall-clock item;
 - a ``tunedPipelineFor`` retune suggestion: MCACHE shards beyond the
   number of concurrently probing threads only add locking, so the
   shard band should track the measured host's thread count — and the
   forward-overlap ``wall_speedup`` says whether the streaming mode
   pays on that host at all (on a single-core recording host it sits
   below 1x; the modeled cycles are the paper-facing number there).

Usage:
    wallclock_roadmap.py RESULT_FILE...

RESULT_FILE holds captured bench stdout or extracted
``BENCH_overlap.json {...}`` lines (both accepted).
"""

import json
import re
import sys

LINE_RE = re.compile(r"^(?:BENCH_[A-Za-z0-9_.-]+\.json\s+)?(\{.*\})\s*$")


def parse(paths):
    entries = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                m = LINE_RE.match(line.strip())
                if not m:
                    continue
                try:
                    entries.append(json.loads(m.group(1)))
                except json.JSONDecodeError:
                    continue
    return entries


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    entries = parse(argv[1:])
    if not entries:
        print("ERROR: no BENCH_*.json result lines found", file=sys.stderr)
        return 1

    print("# ROADMAP wall-clock snippet (paste under the wall-clock item)")
    threads = None
    fwd_overlap = None
    for e in entries:
        bench = e.get("bench", "?")
        cfg = e.get("config", {})
        threads = cfg.get("threads", threads)
        walls = {k: e[k] for k in sorted(e) if k.startswith("wall")}
        line = ", ".join(f"{k}={v}" for k, v in walls.items())
        print(f"- {bench} ({e.get('layer', '?')}, threads="
              f"{cfg.get('threads', '?')}, blockRows="
              f"{cfg.get('blockRows', '?')}, shards="
              f"{cfg.get('shards', '?')}): {line}")
        if bench == "micro_overlap" and "wall_speedup" in e:
            fwd_overlap = e["wall_speedup"]

    print()
    print("# tunedPipelineFor retune suggestion")
    if threads:
        shards = max(4, min(16, int(threads)))
        print(f"- measured host ran {threads} threads; shards beyond the "
              f"probing thread count only add locking -> shard band "
              f"suggestion: {shards} (tunedPipelineFor(rows, threads))")
    if fwd_overlap is not None:
        verdict = ("pays on this host" if fwd_overlap > 1.0
                   else "does NOT pay on this host (modeled cycles are "
                        "the paper-facing number; needs spare cores)")
        print(f"- forward-overlap wall_speedup {fwd_overlap}: streaming "
              f"mode {verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
