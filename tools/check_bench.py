#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_*.json result lines.

Every microbench prints one ``ARTIFACT {json}`` line (see
bench/bench_common.hpp, bench::ResultLine). CI captures the bench
stdout, and this script compares the fresh lines against the committed
baselines at the repository root:

 - The committed ``BENCH_*.json`` files are JSON-lines: one entry per
   recorded configuration, distinguished by ``bench`` and
   ``config.smoke``. CI's smoke runs are compared against committed
   smoke entries; full runs against full entries. A fresh line with no
   committed counterpart of the same mode is reported but not gated
   (there is nothing meaningful to compare across modes).
 - Only deterministic keys are gated: ``modeled_speedup`` and every
   ``model_*_speedup`` key present in both lines. Wall-clock keys
   vary by host and are never gated.
 - Modeled speedups are deterministic *given the measured hit mix*,
   and the mix derives from signs of float dot products — a different
   compiler's FMA/reassociation choices can flip a borderline
   signature bit and shift it. When both lines carry ``hit_frac`` and
   they disagree by more than 0.005, the entry is reported and
   skipped instead of gated (re-record the baseline from CI's fresh
   JSON artifact to re-arm it); when the mixes match, a speedup drop
   is a real model/code regression.
 - A gated key fails the run when the fresh value drops more than
   ``--tolerance`` (default 5%) below the committed one. Improvements
   and small noise pass.

Usage:
    check_bench.py [--repo DIR] [--tolerance FRAC]
                   [--write-fresh DIR] OUTPUT_FILE...

OUTPUT_FILE arguments are captured bench stdout (any text; only the
``BENCH_*.json {...}`` lines are read). With ``--write-fresh`` the
fresh lines are also written one file per artifact, for upload as a
workflow artifact.
"""

import argparse
import json
import os
import re
import sys

LINE_RE = re.compile(r"^(BENCH_[A-Za-z0-9_.-]+\.json)\s+(\{.*\})\s*$")


def parse_lines(paths):
    """All ``artifact -> [entry, ...]`` result lines in the files."""
    fresh = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                m = LINE_RE.match(line.strip())
                if not m:
                    continue
                artifact, payload = m.group(1), m.group(2)
                try:
                    entry = json.loads(payload)
                except json.JSONDecodeError as e:
                    print(f"ERROR: unparseable result line in {path}: {e}")
                    sys.exit(2)
                fresh.setdefault(artifact, []).append(entry)
    return fresh


def load_baselines(path):
    """Committed JSON-lines entries of one BENCH_*.json file."""
    entries = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def entry_mode(entry):
    """(bench, smoke-flag) identity of a result line."""
    smoke = entry.get("config", {}).get("smoke", 0)
    return entry.get("bench", "?"), int(smoke)


def gated_keys(fresh, committed):
    """Deterministic speedup keys present and numeric in both."""
    keys = []
    for key in sorted(set(fresh) & set(committed)):
        if key != "modeled_speedup" and not (
            key.startswith("model_") and key.endswith("_speedup")
        ):
            continue
        if isinstance(fresh[key], (int, float)) and isinstance(
            committed[key], (int, float)
        ):
            keys.append(key)
    return keys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("outputs", nargs="+", help="captured bench stdout files")
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed fractional drop below the committed value",
    )
    ap.add_argument(
        "--write-fresh",
        metavar="DIR",
        help="also write the fresh lines, one file per artifact",
    )
    args = ap.parse_args()

    fresh_by_artifact = parse_lines(args.outputs)
    if not fresh_by_artifact:
        print("ERROR: no BENCH_*.json result lines found in the inputs")
        return 2

    if args.write_fresh:
        os.makedirs(args.write_fresh, exist_ok=True)
        for artifact, entries in fresh_by_artifact.items():
            out = os.path.join(args.write_fresh, artifact)
            with open(out, "w", encoding="utf-8") as f:
                for entry in entries:
                    f.write(json.dumps(entry) + "\n")

    failures = []
    compared = 0
    for artifact, entries in sorted(fresh_by_artifact.items()):
        committed_path = os.path.join(args.repo, artifact)
        if not os.path.exists(committed_path):
            print(f"{artifact}: no committed baseline, skipping")
            continue
        baselines = load_baselines(committed_path)
        for entry in entries:
            mode = entry_mode(entry)
            base = next(
                (b for b in baselines if entry_mode(b) == mode), None
            )
            if base is None:
                print(
                    f"{artifact}: no committed {mode[0]} entry with "
                    f"smoke={mode[1]}, skipping (record one to gate it)"
                )
                continue
            fresh_mix = entry.get("hit_frac")
            base_mix = base.get("hit_frac")
            if (
                isinstance(fresh_mix, (int, float))
                and isinstance(base_mix, (int, float))
                and abs(fresh_mix - base_mix) > 0.005
            ):
                print(
                    f"{artifact} [{mode[0]} smoke={mode[1]}]: measured "
                    f"hit_frac {fresh_mix:.3f} != committed "
                    f"{base_mix:.3f} — host FP divergence, skipping "
                    f"(re-record the baseline from the fresh artifact)"
                )
                continue
            keys = gated_keys(entry, base)
            if not keys:
                print(f"{artifact} [{mode[0]}]: no gateable keys")
                continue
            for key in keys:
                compared += 1
                floor = base[key] * (1.0 - args.tolerance)
                status = "ok" if entry[key] >= floor else "REGRESSED"
                print(
                    f"{artifact} [{mode[0]} smoke={mode[1]}] {key}: "
                    f"fresh {entry[key]:.3f} vs committed "
                    f"{base[key]:.3f} (floor {floor:.3f}) -> {status}"
                )
                if status == "REGRESSED":
                    failures.append((artifact, key, entry[key], base[key]))

    if failures:
        print(f"\nFAIL: {len(failures)} modeled speedup(s) regressed "
              f">{args.tolerance:.0%} vs the committed baselines")
        return 1
    if compared == 0:
        print("\nWARNING: nothing compared — no committed entries matched")
        return 0
    print(f"\nOK: {compared} modeled speedup(s) within "
          f"{args.tolerance:.0%} of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
