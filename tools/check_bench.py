#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_*.json result lines.

Every microbench prints one ``ARTIFACT {json}`` line (see
bench/bench_common.hpp, bench::ResultLine). CI captures the bench
stdout, and this script compares the fresh lines against the committed
baselines at the repository root:

 - The committed ``BENCH_*.json`` files are JSON-lines: one entry per
   recorded configuration, distinguished by ``bench`` and
   ``config.smoke``. CI's smoke runs are compared against committed
   smoke entries; full runs against full entries. A fresh line with no
   committed counterpart of the same mode is reported but not gated
   (there is nothing meaningful to compare across modes).
 - Deterministic keys are always gated: ``modeled_speedup``, every
   ``model_*_speedup`` key, the event-backend ``event_*_speedup``
   keys, and the ``*_agreement_dev`` ceilings (analytic-vs-event
   deviation, bench/sweep_eventsim.cpp) present in both lines.
   Wall-clock keys vary by host and are never gated; ``wall*`` keys
   present in both lines still print an info-only delta line so the
   CI log shows wall drift without failing on it.
 - Kernel-performance keys (``*_gbps``, ``*_cycles_per_row``, and the
   remaining non-``wall*`` ``*_speedup`` keys, from
   bench/micro_kernels.cpp) are gated at 3x the tolerance (TSC and
   bandwidth measurements on shared hosts carry run-to-run noise the
   deterministic modeled keys do not), only on non-smoke entries
   (smoke-mode perf numbers are documented as meaningless in
   bench_common.hpp), and only when both lines carry the same
   ``config.cpu`` (an AVX2 baseline says nothing about a scalar-only
   host). ``*_cycles_per_row`` gates in the opposite
   direction — fewer cycles is better, so the fresh value fails when
   it rises more than the tolerance above the committed one. Every
   perf comparison prints a one-line delta for the CI log, gated or
   not.
 - Modeled speedups are deterministic *given the measured hit mix*,
   and the mix derives from signs of float dot products — a different
   compiler's FMA/reassociation choices can flip a borderline
   signature bit and shift it. When both lines carry ``hit_frac`` and
   they disagree by more than 0.005, the entry is reported and
   skipped instead of gated (re-record the baseline from CI's fresh
   JSON artifact to re-arm it); when the mixes match, a speedup drop
   is a real model/code regression.
 - A gated key fails the run when the fresh value drops more than
   ``--tolerance`` (default 5%) below the committed one. Improvements
   and small noise pass.

Usage:
    check_bench.py [--repo DIR] [--tolerance FRAC]
                   [--write-fresh DIR] OUTPUT_FILE...

OUTPUT_FILE arguments are captured bench stdout (any text; only the
``BENCH_*.json {...}`` lines are read). With ``--write-fresh`` the
fresh lines are also written one file per artifact, for upload as a
workflow artifact.
"""

import argparse
import json
import os
import re
import sys

LINE_RE = re.compile(r"^(BENCH_[A-Za-z0-9_.-]+\.json)\s+(\{.*\})\s*$")


def parse_lines(paths):
    """All ``artifact -> [entry, ...]`` result lines in the files."""
    fresh = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                m = LINE_RE.match(line.strip())
                if not m:
                    continue
                artifact, payload = m.group(1), m.group(2)
                try:
                    entry = json.loads(payload)
                except json.JSONDecodeError as e:
                    print(f"ERROR: unparseable result line in {path}: {e}")
                    sys.exit(2)
                fresh.setdefault(artifact, []).append(entry)
    return fresh


def load_baselines(path):
    """Committed JSON-lines entries of one BENCH_*.json file."""
    entries = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def entry_mode(entry):
    """(bench, smoke-flag) identity of a result line."""
    smoke = entry.get("config", {}).get("smoke", 0)
    return entry.get("bench", "?"), int(smoke)


def key_class(key):
    """Gate class of one result key.

    Returns ``("model", "floor")`` for the deterministic modeled
    speedups, ``("perf", "floor")`` / ``("perf", "ceiling")`` for the
    host-dependent kernel-performance keys, or ``None`` for keys that
    are never gated (wall clocks, raw counts, configs).
    """
    if key == "modeled_speedup" or (
        key.startswith("model_") and key.endswith("_speedup")
    ):
        return ("model", "floor")
    if key.startswith("event_") and key.endswith("_speedup"):
        # Event-backend speedups (bench/sweep_eventsim.cpp) come from
        # the deterministic discrete-event replay — integer cycle
        # arithmetic, no wall clock — so they gate tight like the
        # closed-form modeled keys.
        return ("model", "floor")
    if key.endswith("_agreement_dev"):
        # Analytic-vs-event deviation on the pinned validation points:
        # smaller is better, and a rise past tolerance above the
        # committed value means the two backends drifted apart.
        return ("model", "ceiling")
    if key.startswith("wall"):
        return None
    if key.endswith("_gbps") or key.endswith("_speedup"):
        return ("perf", "floor")
    if key.endswith("_cycles_per_row"):
        return ("perf", "ceiling")
    if key.endswith("_setup_ms"):
        # Plan-bind setup cost (bench/micro_planner.cpp): smaller is
        # better, so the fresh value must stay under the committed
        # ceiling.
        return ("perf", "ceiling")
    return None


def gated_keys(fresh, committed):
    """``(key, class, direction)`` for keys numeric in both lines."""
    keys = []
    for key in sorted(set(fresh) & set(committed)):
        cls = key_class(key)
        if cls is None:
            continue
        if isinstance(fresh[key], (int, float)) and isinstance(
            committed[key], (int, float)
        ):
            keys.append((key, cls[0], cls[1]))
    return keys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("outputs", nargs="+", help="captured bench stdout files")
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed fractional drop below the committed value",
    )
    ap.add_argument(
        "--write-fresh",
        metavar="DIR",
        help="also write the fresh lines, one file per artifact",
    )
    args = ap.parse_args()

    fresh_by_artifact = parse_lines(args.outputs)
    if not fresh_by_artifact:
        print("ERROR: no BENCH_*.json result lines found in the inputs")
        return 2

    if args.write_fresh:
        os.makedirs(args.write_fresh, exist_ok=True)
        for artifact, entries in fresh_by_artifact.items():
            out = os.path.join(args.write_fresh, artifact)
            with open(out, "w", encoding="utf-8") as f:
                for entry in entries:
                    f.write(json.dumps(entry) + "\n")

    failures = []
    compared = 0
    for artifact, entries in sorted(fresh_by_artifact.items()):
        committed_path = os.path.join(args.repo, artifact)
        if not os.path.exists(committed_path):
            print(f"{artifact}: no committed baseline, skipping")
            continue
        baselines = load_baselines(committed_path)
        for entry in entries:
            mode = entry_mode(entry)
            base = next(
                (b for b in baselines if entry_mode(b) == mode), None
            )
            if base is None:
                print(
                    f"{artifact}: no committed {mode[0]} entry with "
                    f"smoke={mode[1]}, skipping (record one to gate it)"
                )
                continue
            fresh_mix = entry.get("hit_frac")
            base_mix = base.get("hit_frac")
            if (
                isinstance(fresh_mix, (int, float))
                and isinstance(base_mix, (int, float))
                and abs(fresh_mix - base_mix) > 0.005
            ):
                print(
                    f"{artifact} [{mode[0]} smoke={mode[1]}]: measured "
                    f"hit_frac {fresh_mix:.3f} != committed "
                    f"{base_mix:.3f} — host FP divergence, skipping "
                    f"(re-record the baseline from the fresh artifact)"
                )
                continue
            # Wall-clock keys: info-only deltas, never gated (host-
            # dependent), printed so wall drift is visible in CI logs.
            for key in sorted(set(entry) & set(base)):
                if not key.startswith("wall"):
                    continue
                if not isinstance(entry[key], (int, float)) or not isinstance(
                    base[key], (int, float)
                ):
                    continue
                delta = (
                    (entry[key] / base[key] - 1.0) * 100.0 if base[key] else 0.0
                )
                print(
                    f"{artifact} [{mode[0]} smoke={mode[1]}] {key}: "
                    f"fresh {entry[key]:.3f} vs committed {base[key]:.3f} "
                    f"({delta:+.1f}%) -> info only (wall clock)"
                )
            keys = gated_keys(entry, base)
            if not keys:
                print(f"{artifact} [{mode[0]}]: no gateable keys")
                continue
            # Perf keys are host-dependent: gate only full-mode runs
            # on the same CPU class as the committed baseline.
            fresh_cpu = entry.get("config", {}).get("cpu")
            base_cpu = base.get("config", {}).get("cpu")
            perf_skip = None
            if mode[1]:
                perf_skip = "smoke-mode perf numbers are not meaningful"
            elif fresh_cpu != base_cpu:
                perf_skip = (
                    f"config.cpu {fresh_cpu!r} != committed {base_cpu!r}"
                )
            for key, cls, direction in keys:
                delta = (
                    (entry[key] / base[key] - 1.0) * 100.0
                    if base[key]
                    else 0.0
                )
                if cls == "perf" and perf_skip:
                    print(
                        f"{artifact} [{mode[0]} smoke={mode[1]}] {key}: "
                        f"fresh {entry[key]:.3f} vs committed "
                        f"{base[key]:.3f} ({delta:+.1f}%) -> "
                        f"info only ({perf_skip})"
                    )
                    continue
                compared += 1
                tol = args.tolerance * (3.0 if cls == "perf" else 1.0)
                if direction == "ceiling":
                    bound = base[key] * (1.0 + tol)
                    ok = entry[key] <= bound
                    bound_str = f"ceiling {bound:.3f}"
                else:
                    bound = base[key] * (1.0 - tol)
                    ok = entry[key] >= bound
                    bound_str = f"floor {bound:.3f}"
                status = "ok" if ok else "REGRESSED"
                print(
                    f"{artifact} [{mode[0]} smoke={mode[1]}] {key}: "
                    f"fresh {entry[key]:.3f} vs committed "
                    f"{base[key]:.3f} ({delta:+.1f}%, {bound_str}) "
                    f"-> {status}"
                )
                if status == "REGRESSED":
                    failures.append((artifact, key, entry[key], base[key]))

    if failures:
        print(f"\nFAIL: {len(failures)} gated key(s) regressed "
              f">{args.tolerance:.0%} vs the committed baselines")
        return 1
    if compared == 0:
        print("\nWARNING: nothing compared — no committed entries matched")
        return 0
    print(f"\nOK: {compared} gated key(s) within "
          f"{args.tolerance:.0%} of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
